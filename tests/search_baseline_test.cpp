#include "clado/core/search_baseline.h"

#include <gtest/gtest.h>

#include "clado/core/algorithms.h"
#include "test_models_util.h"

namespace clado::core {
namespace {

using clado::testing::make_noise_batch;
using clado::testing::make_tiny_model;
using clado::testing::Model;
using clado::tensor::Rng;

struct SearchFixture {
  Rng rng{31};
  Model model;
  clado::data::Batch batch;

  SearchFixture() : model(make_tiny_model(rng)) {
    Rng brng(32);
    batch = make_noise_batch(brng);
  }

  double uniform_bytes(int bits) const {
    double bytes = 0.0;
    for (const auto& l : model.quant_layers) {
      bytes += static_cast<double>(l.layer->weight_param().value.numel()) * bits / 8.0;
    }
    return bytes;
  }
};

TEST(RandomSearch, ProducesFeasibleAssignment) {
  SearchFixture f;
  SearchOptions opts;
  opts.max_evaluations = 30;
  const double target = f.uniform_bytes(8) * 0.5;
  const auto res = random_search(f.model, f.batch, target, opts);
  ASSERT_TRUE(res.feasible);
  EXPECT_LE(res.bytes, target + 1e-6);
  EXPECT_EQ(res.evaluations, 30);
  EXPECT_EQ(res.bits.size(), f.model.quant_layers.size());
  for (int b : res.bits) EXPECT_TRUE(b == 2 || b == 8);
}

TEST(RandomSearch, InfeasibleTargetReported) {
  SearchFixture f;
  const auto res = random_search(f.model, f.batch, f.uniform_bytes(2) * 0.5, {});
  EXPECT_FALSE(res.feasible);
}

TEST(RandomSearch, RestoresWeights) {
  SearchFixture f;
  std::vector<clado::nn::Tensor> before;
  for (auto& l : f.model.quant_layers) before.push_back(l.layer->weight_param().value);
  SearchOptions opts;
  opts.max_evaluations = 10;
  random_search(f.model, f.batch, f.uniform_bytes(8) * 0.5, opts);
  for (std::size_t i = 0; i < before.size(); ++i) {
    const auto& now = f.model.quant_layers[i].layer->weight_param().value;
    for (std::int64_t k = 0; k < before[i].numel(); ++k) {
      ASSERT_EQ(now[k], before[i][k]);
    }
  }
}

TEST(RandomSearch, DeterministicForSeed) {
  SearchFixture f;
  SearchOptions opts;
  opts.max_evaluations = 20;
  opts.seed = 9;
  const auto a = random_search(f.model, f.batch, f.uniform_bytes(8) * 0.5, opts);
  const auto b = random_search(f.model, f.batch, f.uniform_bytes(8) * 0.5, opts);
  EXPECT_EQ(a.choice, b.choice);
  EXPECT_DOUBLE_EQ(a.loss, b.loss);
}

TEST(EvolutionarySearch, FeasibleAndAtLeastAsGoodAsItsPopulationInit) {
  SearchFixture f;
  SearchOptions opts;
  opts.max_evaluations = 60;
  opts.population = 8;
  const double target = f.uniform_bytes(8) * 0.5;
  const auto evo = evolutionary_search(f.model, f.batch, target, opts);
  ASSERT_TRUE(evo.feasible);
  EXPECT_LE(evo.bytes, target + 1e-6);
  EXPECT_LE(evo.evaluations, 60);

  // With the same seed, the first `population` random candidates are the
  // same ones random_search would try; evolution must end at least as good.
  SearchOptions rnd_opts = opts;
  rnd_opts.max_evaluations = opts.population;
  const auto rnd = random_search(f.model, f.batch, target, rnd_opts);
  EXPECT_LE(evo.loss, rnd.loss + 1e-9);
}

TEST(EvolutionarySearch, MoreEvaluationsNeverHurt) {
  SearchFixture f;
  const double target = f.uniform_bytes(8) * 0.45;
  SearchOptions small;
  small.max_evaluations = 20;
  small.population = 6;
  SearchOptions big = small;
  big.max_evaluations = 80;
  const auto a = evolutionary_search(f.model, f.batch, target, small);
  const auto b = evolutionary_search(f.model, f.batch, target, big);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_LE(b.loss, a.loss + 1e-9);
}

TEST(EvolutionarySearch, RejectsDegeneratePopulation) {
  SearchFixture f;
  SearchOptions opts;
  opts.population = 1;
  EXPECT_THROW(evolutionary_search(f.model, f.batch, f.uniform_bytes(8), opts),
               std::invalid_argument);
}

TEST(Search, DirectLossAgreesWithPipelineEvaluation) {
  // The search's candidate loss must match what the model reports when the
  // same assignment is baked through the quant helpers.
  SearchFixture f;
  SearchOptions opts;
  opts.max_evaluations = 15;
  const double target = f.uniform_bytes(8) * 0.6;
  const auto res = random_search(f.model, f.batch, target, opts);
  ASSERT_TRUE(res.feasible);

  clado::quant::WeightSnapshot snap(f.model.quant_layers);
  clado::quant::bake_weights(f.model.quant_layers, res.bits, f.model.scheme);
  const double direct = clado::testing::full_loss(f.model, f.batch);
  EXPECT_NEAR(direct, res.loss, 1e-6 + 1e-5 * std::abs(direct));
}

}  // namespace
}  // namespace clado::core
