// Bit-identicality of the parallel sensitivity sweep, Model::clone deep
// copies, and exception safety of the weight-mutation sites.
#include "clado/core/sensitivity.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "clado/models/builders.h"
#include "clado/nn/blocks.h"
#include "clado/nn/layers.h"

namespace clado::core {
namespace {

using clado::models::Model;
using clado::nn::Act;
using clado::nn::Activation;
using clado::nn::Conv2d;
using clado::nn::GlobalAvgPool;
using clado::nn::Linear;
using clado::nn::ResidualBlock;
using clado::nn::Sequential;
using clado::tensor::Rng;
using clado::tensor::Tensor;

/// Same 4-quant-layer model as sensitivity_test.cpp.
Model make_tiny_model(Rng& rng) {
  Model m;
  m.name = "tiny";
  m.net = std::make_unique<Sequential>();
  m.candidate_bits = {2, 8};
  m.scheme = clado::quant::WeightScheme::kPerTensorSymmetric;
  m.num_classes = 5;
  m.image_size = 8;

  {
    auto stem = std::make_unique<Sequential>();
    stem->emplace_named<Conv2d>("conv1", 3, 4, 3, 1, 1)->init(rng);
    stem->emplace_named<Activation>("act", Act::kRelu);
    m.net->push_back(std::move(stem), "stem");
  }
  {
    auto main = std::make_unique<Sequential>();
    main->emplace_named<Conv2d>("conv1", 4, 4, 3, 1, 1)->init(rng);
    main->emplace_named<Activation>("act", Act::kRelu);
    main->emplace_named<Conv2d>("conv2", 4, 4, 3, 1, 1)->init(rng);
    m.net->push_back(std::make_unique<ResidualBlock>(std::move(main), nullptr, true), "block");
  }
  m.net->emplace_named<GlobalAvgPool>("pool");
  m.net->emplace_named<Linear>("fc", 4, 5)->init(rng);
  m.finalize();
  return m;
}

clado::data::Batch make_batch(Rng& rng, std::int64_t n = 16) {
  clado::data::Batch batch;
  batch.images = Tensor::randn({n, 3, 8, 8}, rng);
  for (std::int64_t i = 0; i < n; ++i) batch.labels.push_back(i % 5);
  return batch;
}

std::vector<Tensor> weight_snapshot(const Model& m) {
  std::vector<Tensor> out;
  for (const auto& l : m.quant_layers) out.push_back(l.layer->weight_param().value);
  return out;
}

void expect_weights_equal(const Model& m, const std::vector<Tensor>& snapshot) {
  ASSERT_EQ(m.quant_layers.size(), snapshot.size());
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    const auto& now = m.quant_layers[i].layer->weight_param().value;
    ASSERT_EQ(now.numel(), snapshot[i].numel());
    for (std::int64_t k = 0; k < now.numel(); ++k) {
      ASSERT_EQ(now[k], snapshot[i][k]) << "layer " << i << " element " << k;
    }
  }
}

TEST(ParallelSweep, BitIdenticalToSerialAtAnyThreadCount) {
  Rng rng(21);
  Model m = make_tiny_model(rng);
  SensitivityEngine engine(m, make_batch(rng));
  const Tensor g1 = engine.full_matrix({}, 1);
  for (int threads : {2, 4, 7}) {
    const Tensor gN = engine.full_matrix({}, threads);
    ASSERT_EQ(gN.numel(), g1.numel());
    for (std::int64_t i = 0; i < g1.numel(); ++i) {
      ASSERT_EQ(gN[i], g1[i]) << threads << " threads, element " << i;
    }
  }
}

TEST(ParallelSweep, StatsMatchSerialExactly) {
  // Replicas carry the serial engine's activation cache, so the parallel
  // sweep performs the exact same set of measurements — the integer
  // counters must agree, not just the matrix.
  Rng rng_a(22);
  Model ma = make_tiny_model(rng_a);
  Rng rng_b(22);
  Model mb = make_tiny_model(rng_b);
  Rng batch_a(23);
  Rng batch_b(23);
  SensitivityEngine serial(ma, make_batch(batch_a));
  SensitivityEngine parallel(mb, make_batch(batch_b));
  const Tensor gs = serial.full_matrix({}, 1);
  const Tensor gp = parallel.full_matrix({}, 4);
  for (std::int64_t i = 0; i < gs.numel(); ++i) ASSERT_EQ(gp[i], gs[i]);
  EXPECT_EQ(parallel.stats().forward_measurements, serial.stats().forward_measurements);
  EXPECT_EQ(parallel.stats().stage_executions, serial.stats().stage_executions);
  EXPECT_EQ(parallel.stats().stage_executions_naive, serial.stats().stage_executions_naive);
}

TEST(ParallelSweep, MoreThreadsThanRowsStillCorrect) {
  Rng rng(24);
  Model m = make_tiny_model(rng);
  SensitivityEngine engine(m, make_batch(rng));
  const Tensor g1 = engine.full_matrix({}, 1);
  const Tensor g16 = engine.full_matrix({}, 16);  // > 4 layers
  for (std::int64_t i = 0; i < g1.numel(); ++i) ASSERT_EQ(g16[i], g1[i]);
}

TEST(ParallelSweep, WeightsRestoredAndProgressReported) {
  Rng rng(25);
  Model m = make_tiny_model(rng);
  const auto before = weight_snapshot(m);
  SensitivityEngine engine(m, make_batch(rng));
  std::int64_t last_done = 0;
  std::int64_t last_total = 0;
  engine.full_matrix(
      [&](std::int64_t done, std::int64_t total) {
        last_done = done;
        last_total = total;
      },
      4);
  // 4 layers x 2 bits: 4*3/2 * 4 = 24 pair measurements.
  EXPECT_EQ(last_total, 24);
  EXPECT_EQ(last_done, 24);  // completion is always reported
  expect_weights_equal(m, before);
}

TEST(ParallelSweep, ThrowingProgressLeavesWeightsIntact) {
  for (int threads : {1, 4}) {
    Rng rng(26);
    Model m = make_tiny_model(rng);
    const auto before = weight_snapshot(m);
    SensitivityEngine engine(m, make_batch(rng));
    const auto poison = [](std::int64_t, std::int64_t) {
      throw std::runtime_error("abort sweep");
    };
    EXPECT_THROW(engine.full_matrix(poison, threads), std::runtime_error) << threads;
    // The guards unwind every in-flight perturbation; the primary model
    // must be byte-identical to its pre-sweep state.
    expect_weights_equal(m, before);
    // The engine stays usable: a clean retry matches a fresh engine.
    const Tensor g = engine.full_matrix({}, threads);
    EXPECT_GT(g.numel(), 0);
    expect_weights_equal(m, before);
  }
}

TEST(ModelClone, ForwardBitIdenticalAcrossZoo) {
  for (const auto& name : clado::models::model_names()) {
    Rng rng(27);
    Model m = clado::models::build_by_name(name, rng);
    Model copy = m.clone();
    EXPECT_EQ(copy.act_quants.size(), m.act_quants.size()) << name;
    ASSERT_EQ(copy.num_quant_layers(), m.num_quant_layers()) << name;

    Rng batch_rng(28);
    const Tensor x = Tensor::randn({2, m.channels, m.image_size, m.image_size}, batch_rng);
    m.net->set_training(false);
    copy.net->set_training(false);
    const Tensor y1 = m.net->forward(x);
    const Tensor y2 = copy.net->forward(x);
    ASSERT_EQ(y1.numel(), y2.numel()) << name;
    for (std::int64_t i = 0; i < y1.numel(); ++i) {
      ASSERT_EQ(y1[i], y2[i]) << name << " output " << i;
    }
  }
}

TEST(ModelClone, CloneIsIndependentOfOriginal) {
  Rng rng(29);
  Model m = make_tiny_model(rng);
  Model copy = m.clone();
  // Mutating the copy's weights must not touch the original.
  const Tensor original = m.quant_layers[0].layer->weight_param().value;
  copy.quant_layers[0].layer->weight_param().value.fill(123.0F);
  const auto& still = m.quant_layers[0].layer->weight_param().value;
  for (std::int64_t k = 0; k < still.numel(); ++k) ASSERT_EQ(still[k], original[k]);
}

}  // namespace
}  // namespace clado::core
