// Cross-path consistency suite for the runtime-dispatched GEMM kernel
// layer: every level must agree with the scalar reference — bit-exactly
// for int8 (integer arithmetic, no excuses), within accumulation-order
// tolerance for fp32 — across randomized shapes including ragged tails
// that do not divide any block or tile size.
#include "clado/tensor/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "clado/tensor/ops.h"
#include "clado/tensor/rng.h"
#include "clado/tensor/tensor.h"

namespace clado::tensor {
namespace {

using kernels::Level;

// Force a multi-threaded pool (the parallel-agreement test needs one) and a
// clean CLADO_KERNEL before the first ThreadPool/active_level touch.
const bool kEnvReady = [] {
  ::setenv("CLADO_NUM_THREADS", "4", 1);
  return true;
}();

std::vector<float> randn_buffer(std::int64_t count, Rng& rng) {
  std::vector<float> out(static_cast<std::size_t>(count));
  for (auto& v : out) v = static_cast<float>(rng.normal());
  return out;
}

std::vector<std::int8_t> rand_s8_buffer(std::int64_t count, Rng& rng) {
  std::vector<std::int8_t> out(static_cast<std::size_t>(count));
  for (auto& v : out) v = static_cast<std::int8_t>(static_cast<int>(rng.uniform_int(256)) - 128);
  return out;
}

TEST(GemmKernels, LevelNamesAreStable) {
  EXPECT_STREQ(kernels::level_name(Level::kScalar), "scalar");
  EXPECT_STREQ(kernels::level_name(Level::kAvx2), "avx2");
}

TEST(GemmKernels, ResolveLevelParsesCladoKernelStrictly) {
  ASSERT_TRUE(kEnvReady);
  const char* saved = std::getenv("CLADO_KERNEL");
  const std::string saved_value = saved == nullptr ? "" : saved;

  ::unsetenv("CLADO_KERNEL");
  const Level auto_level = kernels::resolve_level();
  EXPECT_EQ(auto_level, kernels::cpu_supports_avx2() ? Level::kAvx2 : Level::kScalar);

  ::setenv("CLADO_KERNEL", "auto", 1);
  EXPECT_EQ(kernels::resolve_level(), auto_level);

  ::setenv("CLADO_KERNEL", "scalar", 1);
  EXPECT_EQ(kernels::resolve_level(), Level::kScalar);

  if (kernels::cpu_supports_avx2()) {
    ::setenv("CLADO_KERNEL", "avx2", 1);
    EXPECT_EQ(kernels::resolve_level(), Level::kAvx2);
  } else {
    // Requesting unavailable hardware is a hard error, not a downgrade.
    ::setenv("CLADO_KERNEL", "avx2", 1);
    EXPECT_THROW(kernels::resolve_level(), std::invalid_argument);
  }

  // Garbage must not silently run a different kernel than asked for.
  ::setenv("CLADO_KERNEL", "sse9", 1);
  EXPECT_THROW(kernels::resolve_level(), std::invalid_argument);
  ::setenv("CLADO_KERNEL", "SCALAR", 1);
  EXPECT_THROW(kernels::resolve_level(), std::invalid_argument);

  if (saved_value.empty()) {
    ::unsetenv("CLADO_KERNEL");
  } else {
    ::setenv("CLADO_KERNEL", saved_value.c_str(), 1);
  }
}

TEST(GemmKernels, ActiveLevelIsSupported) {
  const Level level = kernels::active_level();
  if (level == Level::kAvx2) {
    EXPECT_TRUE(kernels::cpu_supports_avx2());
  }
  // Cached: repeated calls agree.
  EXPECT_EQ(kernels::active_level(), level);
}

// Randomized fp32 shapes, including ragged tails with m % 64, m % 6,
// n % 16, k % 128 all nonzero, plus the k=1 / n=1 / m=1 degenerates.
TEST(GemmKernels, F32ScalarVsAvx2AcrossRandomShapes) {
  if (!kernels::cpu_supports_avx2()) {
    GTEST_SKIP() << "no AVX2 on this host; scalar is the only level";
  }
  struct Case {
    std::int64_t m, n, k;
  };
  const std::vector<Case> cases = {
      {1, 1, 1},    {1, 5, 3},     {5, 1, 7},      {2, 3, 1},     {6, 16, 32},
      {7, 17, 33},  {13, 29, 41},  {64, 128, 128}, {65, 129, 127}, {64, 16, 200},
      {100, 20, 1}, {3, 100, 5},   {130, 40, 96},  {67, 31, 130},
  };
  Rng rng(2024);
  int combo = 0;
  for (const Case& cs : cases) {
    for (const bool trans_a : {false, true}) {
      for (const bool trans_b : {false, true}) {
        SCOPED_TRACE("m=" + std::to_string(cs.m) + " n=" + std::to_string(cs.n) +
                     " k=" + std::to_string(cs.k) + " ta=" + std::to_string(trans_a) +
                     " tb=" + std::to_string(trans_b));
        const float alpha = (combo++ % 3 == 0) ? 1.0F : 0.75F;
        const auto a = randn_buffer(cs.m * cs.k, rng);
        const auto b = randn_buffer(cs.k * cs.n, rng);
        const std::int64_t lda = trans_a ? cs.m : cs.k;
        const std::int64_t ldb = trans_b ? cs.k : cs.n;
        // Nonzero C start: accumulation into existing values must agree too.
        auto c_scalar = randn_buffer(cs.m * cs.n, rng);
        auto c_avx2 = c_scalar;
        kernels::gemm_f32_row_range(Level::kScalar, trans_a, trans_b, 0, cs.m, cs.n, cs.k,
                                    alpha, a.data(), b.data(), c_scalar.data(), lda, ldb);
        kernels::gemm_f32_row_range(Level::kAvx2, trans_a, trans_b, 0, cs.m, cs.n, cs.k, alpha,
                                    a.data(), b.data(), c_avx2.data(), lda, ldb);
        for (std::size_t i = 0; i < c_scalar.size(); ++i) {
          const float x = c_scalar[i];
          const float y = c_avx2[i];
          // Accumulation-order tolerance: relative in the magnitude of the
          // result plus an absolute floor that grows with k (cancellation
          // can leave a tiny result assembled from O(k) unit-size terms).
          const float tol =
              1e-5F * (1.0F + std::abs(x) + 0.02F * static_cast<float>(cs.k));
          ASSERT_NEAR(x, y, tol) << "element " << i;
        }
      }
    }
  }
}

// int8 must be BIT-EXACT across levels for any shape, including k tails
// shorter than one 16-lane vector and zero points at the int8 extremes.
TEST(GemmKernels, S8ScalarVsAvx2BitExactAcrossRandomShapes) {
  if (!kernels::cpu_supports_avx2()) {
    GTEST_SKIP() << "no AVX2 on this host; scalar is the only level";
  }
  struct Case {
    std::int64_t m, n, k;
    std::int32_t za, zb;
  };
  const std::vector<Case> cases = {
      {1, 1, 1, 0, 0},       {1, 4, 7, -3, 5},     {2, 5, 15, 10, -7},
      {3, 3, 16, -128, 127}, {5, 9, 17, 127, -128}, {4, 4, 31, 1, 1},
      {7, 13, 33, -5, 9},    {8, 8, 64, 0, -128},  {17, 5, 100, -64, 64},
      {33, 9, 129, 7, -3},   {2, 1, 257, -1, 2},
  };
  Rng rng(4096);
  for (const Case& cs : cases) {
    SCOPED_TRACE("m=" + std::to_string(cs.m) + " n=" + std::to_string(cs.n) +
                 " k=" + std::to_string(cs.k) + " za=" + std::to_string(cs.za) +
                 " zb=" + std::to_string(cs.zb));
    const auto a = rand_s8_buffer(cs.m * cs.k, rng);
    const auto b = rand_s8_buffer(cs.n * cs.k, rng);
    std::vector<std::int32_t> c_scalar(static_cast<std::size_t>(cs.m * cs.n), 7);
    std::vector<std::int32_t> c_avx2(static_cast<std::size_t>(cs.m * cs.n), -7);
    kernels::gemm_s8s8_s32(Level::kScalar, cs.m, cs.n, cs.k, a.data(), cs.za, b.data(), cs.zb,
                           c_scalar.data());
    kernels::gemm_s8s8_s32(Level::kAvx2, cs.m, cs.n, cs.k, a.data(), cs.za, b.data(), cs.zb,
                           c_avx2.data());
    for (std::size_t i = 0; i < c_scalar.size(); ++i) {
      ASSERT_EQ(c_scalar[i], c_avx2[i]) << "element " << i;
    }
  }
}

// The pool-parallel public gemm() must agree with a direct single-range
// kernel call at the active level — bit-exactly, because chunks start on
// kGemmBlockM boundaries and rows never interact.
TEST(GemmKernels, ParallelGemmMatchesSingleRangeKernelBitExactly) {
  Rng rng(77);
  const std::int64_t m = 256, n = 96, k = 200;  // above the parallel threshold
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  Tensor c_pool({m, n});
  gemm(false, false, m, n, k, 1.0F, a.data(), b.data(), 0.0F, c_pool.data());

  std::vector<float> c_direct(static_cast<std::size_t>(m * n), 0.0F);
  kernels::gemm_f32_row_range(kernels::active_level(), false, false, 0, m, n, k, 1.0F, a.data(),
                              b.data(), c_direct.data(), k, n);
  for (std::int64_t i = 0; i < m * n; ++i) {
    ASSERT_EQ(c_pool[i], c_direct[static_cast<std::size_t>(i)]) << "element " << i;
  }
}

// Pins the DOCUMENTED divergence of gemm()'s tiny-problem fast path: a zero
// A element skips its whole B row, so a non-finite B value it would have
// multiplied never reaches C, while the blocked path computes 0 * inf = NaN.
// Non-finite inputs are rejected upstream of gemm in this repo; if that
// contract ever changes, this test is the tripwire forcing a decision.
TEST(GemmKernels, SmallPathZeroSkipDivergesOnNonFiniteInputs) {
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> a = {0.0F, 1.0F};        // [1, 2]
  const std::vector<float> b = {inf, 2.0F};         // [2, 1]
  std::vector<float> c_small = {0.0F};              // 1*2*1 = tiny => fast path
  gemm(false, false, 1, 1, 2, 1.0F, a.data(), b.data(), 0.0F, c_small.data());
  EXPECT_FLOAT_EQ(c_small[0], 2.0F);  // 0*inf skipped, 1*2 kept

  std::vector<float> c_blocked = {0.0F};
  kernels::gemm_f32_row_range(kernels::active_level(), false, false, 0, 1, 1, 2, 1.0F, a.data(),
                              b.data(), c_blocked.data(), 2, 1);
  EXPECT_TRUE(std::isnan(c_blocked[0]));  // 0*inf propagates as NaN
}

}  // namespace
}  // namespace clado::tensor
