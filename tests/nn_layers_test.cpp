#include "clado/nn/layers.h"

#include <gtest/gtest.h>

#include <cmath>

#include "clado/nn/loss.h"
#include "clado/nn/optimizer.h"
#include "clado/nn/sequential.h"
#include "gradcheck_util.h"

namespace clado::nn {
namespace {

using clado::tensor::Rng;
using clado::testing::check_gradients;

TEST(Conv2d, OutputShape) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 2, 1);
  conv.init(rng);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 4, 4}));
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  Conv2d conv(1, 1, 1, 1, 0, 1, /*bias=*/false);
  conv.weight_param().value.fill(1.0F);
  Rng rng(2);
  const Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
  const Tensor y = conv.forward(x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, KnownConvolution) {
  // 2x2 input, 2x2 kernel of ones, no pad: single output = sum of input.
  Conv2d conv(1, 1, 2, 1, 0, 1, /*bias=*/true);
  conv.weight_param().value.fill(1.0F);
  std::vector<ParamRef> params;
  conv.collect_params("", params);
  ASSERT_EQ(params.size(), 2U);
  params[1].param->value.fill(0.5F);  // bias
  const Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  const Tensor y = conv.forward(x);
  ASSERT_EQ(y.numel(), 1);
  EXPECT_FLOAT_EQ(y[0], 10.5F);
}

TEST(Conv2d, BiasBroadcastsPerChannel) {
  Rng rng(3);
  Conv2d conv(1, 2, 1, 1, 0);
  conv.init(rng);
  std::vector<ParamRef> params;
  conv.collect_params("", params);
  params[1].param->value = Tensor({2}, std::vector<float>{1.0F, -2.0F});
  conv.weight_param().value.fill(0.0F);
  const Tensor y = conv.forward(Tensor({1, 1, 2, 2}, 5.0F));
  EXPECT_FLOAT_EQ(y.at({0, 0, 1, 1}), 1.0F);
  EXPECT_FLOAT_EQ(y.at({0, 1, 0, 0}), -2.0F);
}

TEST(Conv2d, GradCheckDense) {
  Rng rng(4);
  Conv2d conv(2, 3, 3, 1, 1);
  conv.init(rng);
  const Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  const Tensor proj = Tensor::randn({2, 3, 5, 5}, rng);
  check_gradients(conv, x, proj);
}

TEST(Conv2d, GradCheckStridedGrouped) {
  Rng rng(5);
  Conv2d conv(4, 4, 3, 2, 1, /*groups=*/2);
  conv.init(rng);
  const Tensor x = Tensor::randn({2, 4, 6, 6}, rng);
  const Tensor proj = Tensor::randn({2, 4, 3, 3}, rng);
  check_gradients(conv, x, proj);
}

TEST(Conv2d, GradCheckDepthwise) {
  Rng rng(6);
  Conv2d conv(3, 3, 3, 1, 1, /*groups=*/3);
  conv.init(rng);
  const Tensor x = Tensor::randn({1, 3, 4, 4}, rng);
  const Tensor proj = Tensor::randn({1, 3, 4, 4}, rng);
  check_gradients(conv, x, proj);
}

TEST(Conv2d, WeightTransformAppliedInForward) {
  Rng rng(7);
  Conv2d conv(1, 1, 1, 1, 0, 1, /*bias=*/false);
  conv.weight_param().value.fill(2.0F);
  conv.set_weight_transform([](const Tensor& w) {
    Tensor out = w;
    out *= 3.0F;
    return out;
  });
  const Tensor y = conv.forward(Tensor({1, 1, 1, 1}, 1.0F));
  EXPECT_FLOAT_EQ(y[0], 6.0F);
  conv.set_weight_transform(nullptr);
  const Tensor y2 = conv.forward(Tensor({1, 1, 1, 1}, 1.0F));
  EXPECT_FLOAT_EQ(y2[0], 2.0F);
}

TEST(Linear, MatchesHandComputation) {
  Linear fc(2, 2);
  fc.weight_param().value = Tensor({2, 2}, std::vector<float>{1, 2, 3, 4});
  std::vector<ParamRef> params;
  fc.collect_params("", params);
  params[1].param->value = Tensor({2}, std::vector<float>{0.5F, -0.5F});
  const Tensor y = fc.forward(Tensor({1, 2}, std::vector<float>{1, 1}));
  EXPECT_FLOAT_EQ(y.at({0, 0}), 3.5F);
  EXPECT_FLOAT_EQ(y.at({0, 1}), 6.5F);
}

TEST(Linear, FoldsLeadingAxes) {
  Rng rng(8);
  Linear fc(4, 3);
  fc.init(rng);
  const Tensor x = Tensor::randn({2, 5, 4}, rng);
  const Tensor y = fc.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 3}));
}

TEST(Linear, GradCheck) {
  Rng rng(9);
  Linear fc(6, 4);
  fc.init(rng);
  const Tensor x = Tensor::randn({3, 6}, rng);
  const Tensor proj = Tensor::randn({3, 4}, rng);
  check_gradients(fc, x, proj);
}

TEST(Linear, GradCheck3d) {
  Rng rng(10);
  Linear fc(5, 5);
  fc.init(rng);
  const Tensor x = Tensor::randn({2, 3, 5}, rng);
  const Tensor proj = Tensor::randn({2, 3, 5}, rng);
  check_gradients(fc, x, proj);
}

TEST(BatchNorm2d, NormalizesInTrainingMode) {
  Rng rng(11);
  BatchNorm2d bn(4);
  bn.set_training(true);
  const Tensor x = Tensor::randn({8, 4, 3, 3}, rng, 5.0F);
  const Tensor y = bn.forward(x);
  // Per-channel mean ~0, var ~1.
  for (std::int64_t c = 0; c < 4; ++c) {
    double sum = 0.0, sq = 0.0;
    std::int64_t count = 0;
    for (std::int64_t n = 0; n < 8; ++n) {
      for (std::int64_t p = 0; p < 9; ++p) {
        const float v = y.data()[(n * 4 + c) * 9 + p];
        sum += v;
        sq += v * v;
        ++count;
      }
    }
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sq / count, 1.0, 1e-3);
  }
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  Rng rng(12);
  BatchNorm2d bn(2);
  bn.set_training(true);
  // Warm running stats on a wide distribution.
  for (int i = 0; i < 50; ++i) bn.forward(Tensor::randn({16, 2, 2, 2}, rng, 3.0F));
  bn.set_training(false);
  const Tensor x = Tensor::randn({4, 2, 2, 2}, rng, 3.0F);
  const Tensor y = bn.forward(x);
  // Eval output uses running stats: y ≈ x / 3 approximately, not exactly
  // normalized per batch.
  double sq = 0.0;
  for (std::int64_t i = 0; i < y.numel(); ++i) sq += static_cast<double>(y[i]) * y[i];
  EXPECT_NEAR(sq / static_cast<double>(y.numel()), 1.0, 0.5);
}

TEST(BatchNorm2d, GradCheckTrainingMode) {
  Rng rng(13);
  BatchNorm2d bn(3);
  bn.set_training(true);
  const Tensor x = Tensor::randn({4, 3, 3, 3}, rng);
  const Tensor proj = Tensor::randn({4, 3, 3, 3}, rng);
  check_gradients(bn, x, proj, 1e-3, 3e-2);
}

TEST(BatchNorm2d, GradCheckEvalMode) {
  Rng rng(14);
  BatchNorm2d bn(3);
  bn.set_training(true);
  bn.forward(Tensor::randn({8, 3, 4, 4}, rng));
  bn.set_training(false);
  const Tensor x = Tensor::randn({2, 3, 3, 3}, rng);
  const Tensor proj = Tensor::randn({2, 3, 3, 3}, rng);
  check_gradients(bn, x, proj);
}

TEST(BatchNorm2d, RunningStatsNotTrainable) {
  BatchNorm2d bn(2);
  std::vector<ParamRef> params;
  bn.collect_params("", params);
  ASSERT_EQ(params.size(), 4U);
  int trainable = 0;
  for (const auto& p : params) trainable += p.param->trainable ? 1 : 0;
  EXPECT_EQ(trainable, 2);  // gamma, beta only
}

TEST(LayerNorm, NormalizesLastAxis) {
  Rng rng(15);
  LayerNorm ln(16);
  const Tensor x = Tensor::randn({4, 16}, rng, 3.0F);
  const Tensor y = ln.forward(x);
  for (std::int64_t r = 0; r < 4; ++r) {
    double sum = 0.0, sq = 0.0;
    for (std::int64_t j = 0; j < 16; ++j) {
      sum += y.data()[r * 16 + j];
      sq += static_cast<double>(y.data()[r * 16 + j]) * y.data()[r * 16 + j];
    }
    EXPECT_NEAR(sum / 16.0, 0.0, 1e-4);
    EXPECT_NEAR(sq / 16.0, 1.0, 1e-2);
  }
}

TEST(LayerNorm, GradCheck) {
  Rng rng(16);
  LayerNorm ln(8);
  const Tensor x = Tensor::randn({3, 4, 8}, rng);
  const Tensor proj = Tensor::randn({3, 4, 8}, rng);
  check_gradients(ln, x, proj, 1e-3, 3e-2);
}

class ActivationValueTest : public ::testing::TestWithParam<Act> {};

TEST_P(ActivationValueTest, DerivativeMatchesFiniteDifference) {
  const Act kind = GetParam();
  // Sample points avoiding the exact kink locations of piecewise ops.
  for (float x : {-5.0F, -2.9F, -1.0F, -0.1F, 0.1F, 0.5F, 1.5F, 2.9F, 5.0F}) {
    // Central difference in float32: eps large enough to dominate rounding.
    const double eps = 2e-3;
    const double numeric =
        (act_forward(kind, x + static_cast<float>(eps)) -
         act_forward(kind, x - static_cast<float>(eps))) / (2.0 * eps);
    EXPECT_NEAR(act_backward(kind, x), numeric, 5e-3)
        << act_name(kind) << " at x=" << x;
  }
}

TEST_P(ActivationValueTest, GradCheckAsModule) {
  Rng rng(17);
  Activation act(GetParam());
  const Tensor x = Tensor::randn({2, 10}, rng);
  const Tensor proj = Tensor::randn({2, 10}, rng);
  check_gradients(act, x, proj);
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationValueTest,
                         ::testing::Values(Act::kRelu, Act::kRelu6, Act::kHardSwish,
                                           Act::kHardSigmoid, Act::kGelu, Act::kSilu));

TEST(Activation, KnownValues) {
  EXPECT_FLOAT_EQ(act_forward(Act::kRelu, -1.0F), 0.0F);
  EXPECT_FLOAT_EQ(act_forward(Act::kRelu6, 7.0F), 6.0F);
  EXPECT_FLOAT_EQ(act_forward(Act::kHardSigmoid, 0.0F), 0.5F);
  EXPECT_FLOAT_EQ(act_forward(Act::kHardSwish, 3.0F), 3.0F);
  EXPECT_FLOAT_EQ(act_forward(Act::kHardSwish, -3.0F), 0.0F);
  EXPECT_NEAR(act_forward(Act::kGelu, 0.0F), 0.0F, 1e-6);
  EXPECT_NEAR(act_forward(Act::kSilu, 0.0F), 0.0F, 1e-6);
}

TEST(MaxPool2d, SelectsMaximum) {
  MaxPool2d pool(2, 2);
  const Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.numel(), 1);
  EXPECT_FLOAT_EQ(y[0], 5.0F);
  // Gradient routes to the argmax only.
  const Tensor g = pool.backward(Tensor({1, 1, 1, 1}, 2.0F));
  EXPECT_FLOAT_EQ(g[0], 0.0F);
  EXPECT_FLOAT_EQ(g[1], 2.0F);
  EXPECT_FLOAT_EQ(g[2], 0.0F);
}

TEST(MaxPool2d, GradCheck) {
  Rng rng(18);
  MaxPool2d pool(2, 2);
  const Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  const Tensor proj = Tensor::randn({2, 3, 2, 2}, rng);
  check_gradients(pool, x, proj);
}

TEST(GlobalAvgPool, AveragesAndBackprops) {
  GlobalAvgPool pool;
  const Tensor x({1, 2, 2, 2}, std::vector<float>{1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.5F);
  EXPECT_FLOAT_EQ(y[1], 25.0F);
  const Tensor g = pool.backward(Tensor({1, 2}, std::vector<float>{4.0F, 8.0F}));
  EXPECT_FLOAT_EQ(g[0], 1.0F);
  EXPECT_FLOAT_EQ(g[4], 2.0F);
}

TEST(Flatten, RoundTrips) {
  Rng rng(19);
  Flatten flat;
  const Tensor x = Tensor::randn({2, 3, 4, 5}, rng);
  const Tensor y = flat.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
  const Tensor g = flat.backward(y);
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(CrossEntropyLoss, KnownValue) {
  CrossEntropyLoss loss;
  // Uniform logits over 4 classes: loss = ln(4).
  const Tensor logits({2, 4}, 0.0F);
  const double l = loss.forward(logits, {0, 3});
  EXPECT_NEAR(l, std::log(4.0), 1e-6);
}

TEST(CrossEntropyLoss, GradientSumsToZeroPerRow) {
  Rng rng(20);
  CrossEntropyLoss loss;
  const Tensor logits = Tensor::randn({3, 5}, rng);
  loss.forward(logits, {1, 4, 0});
  const Tensor g = loss.backward();
  for (std::int64_t r = 0; r < 3; ++r) {
    double s = 0.0;
    for (std::int64_t j = 0; j < 5; ++j) s += g.data()[r * 5 + j];
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(CrossEntropyLoss, GradientMatchesFiniteDifference) {
  Rng rng(21);
  CrossEntropyLoss loss;
  Tensor logits = Tensor::randn({2, 4}, rng);
  const std::vector<std::int64_t> labels = {2, 0};
  loss.forward(logits, labels);
  const Tensor g = loss.backward();
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + static_cast<float>(eps);
    const double plus = loss.forward(logits, labels);
    logits[i] = saved - static_cast<float>(eps);
    const double minus = loss.forward(logits, labels);
    logits[i] = saved;
    EXPECT_NEAR(g[i], (plus - minus) / (2.0 * eps), 1e-4);
  }
}

TEST(CrossEntropyLoss, AccuracyCountsArgmax) {
  const Tensor logits({2, 3}, std::vector<float>{1, 5, 2, 9, 0, 1});
  EXPECT_DOUBLE_EQ(CrossEntropyLoss::accuracy(logits, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(CrossEntropyLoss::accuracy(logits, {0, 0}), 0.5);
}

TEST(CrossEntropyLoss, RejectsBadLabels) {
  CrossEntropyLoss loss;
  const Tensor logits({1, 3});
  EXPECT_THROW(loss.forward(logits, {5}), std::invalid_argument);
  EXPECT_THROW(loss.forward(logits, {0, 1}), std::invalid_argument);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // min ||w||²/2 via a Linear layer feeding a fixed gradient.
  Rng rng(22);
  Linear fc(4, 1, /*bias=*/false);
  fc.init(rng);
  SgdConfig cfg;
  cfg.lr = 0.2F;
  cfg.momentum = 0.0F;
  cfg.weight_decay = 0.0F;
  Sgd opt(fc, cfg);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    // dL/dw = w  (L = ||w||²/2)
    fc.weight_param().grad = fc.weight_param().value;
    opt.step();
  }
  EXPECT_LT(fc.weight_param().value.sq_norm(), 1e-6F);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Linear fc(2, 2, /*bias=*/false);
  fc.weight_param().value.fill(1.0F);
  SgdConfig cfg;
  cfg.lr = 0.1F;
  cfg.momentum = 0.0F;
  cfg.weight_decay = 0.5F;
  Sgd opt(fc, cfg);
  opt.zero_grad();
  opt.step();
  for (float v : fc.weight_param().value.flat()) EXPECT_FLOAT_EQ(v, 0.95F);
}

TEST(Sgd, ClipGradNorm) {
  Linear fc(3, 1, /*bias=*/false);
  Sgd opt(fc, {});
  fc.weight_param().grad.fill(10.0F);
  const double pre = opt.clip_grad_norm(1.0);
  EXPECT_NEAR(pre, 10.0 * std::sqrt(3.0), 1e-3);
  double post_sq = fc.weight_param().grad.sq_norm();
  EXPECT_NEAR(std::sqrt(post_sq), 1.0, 1e-3);
}

TEST(Sgd, CosineScheduleEndpoints) {
  Linear fc(2, 1);
  Sgd opt(fc, {});
  opt.cosine_lr(1.0F, 0, 100);
  EXPECT_NEAR(opt.lr(), 1.0F, 1e-6);
  opt.cosine_lr(1.0F, 50, 100);
  EXPECT_NEAR(opt.lr(), 0.5F, 1e-6);
  opt.cosine_lr(1.0F, 100, 100);
  EXPECT_NEAR(opt.lr(), 0.0F, 1e-6);
}

TEST(Sequential, ForwardCachedAndForwardFromAgree) {
  Rng rng(23);
  Sequential seq;
  seq.emplace<Linear>(4, 8)->init(rng);
  seq.emplace<Activation>(Act::kRelu);
  seq.emplace<Linear>(8, 3)->init(rng);
  const Tensor x = Tensor::randn({2, 4}, rng);
  const Tensor full = seq.forward_cached(x);
  for (std::size_t stage = 0; stage <= seq.size(); ++stage) {
    const Tensor redo = seq.forward_from(stage);
    ASSERT_EQ(redo.shape(), full.shape());
    for (std::int64_t i = 0; i < full.numel(); ++i) EXPECT_FLOAT_EQ(redo[i], full[i]);
  }
}

TEST(Sequential, ForwardFromWithoutCacheThrows) {
  Sequential seq;
  seq.emplace<Flatten>();
  EXPECT_THROW(seq.forward_from(0), std::logic_error);
  EXPECT_THROW(seq.cached_input(0), std::logic_error);
}

TEST(Sequential, ForwardSpanRecordsStageInputs) {
  Rng rng(25);
  Sequential seq;
  seq.emplace<Linear>(4, 4)->init(rng);
  seq.emplace<Activation>(Act::kRelu);
  seq.emplace<Linear>(4, 2)->init(rng);

  const Tensor x = Tensor::randn({2, 4}, rng);
  const Tensor full = seq.forward_cached(x);

  std::vector<Tensor> record;
  const Tensor redo = seq.forward_span(0, x, &record);
  ASSERT_EQ(record.size(), seq.size() + 1);
  for (std::int64_t i = 0; i < full.numel(); ++i) EXPECT_FLOAT_EQ(redo[i], full[i]);
  // record[k] must equal the cached input of stage k; record.back() is the
  // final output.
  for (std::size_t k = 0; k <= seq.size(); ++k) {
    const Tensor& expect = k < seq.size() ? seq.cached_input(k) : full;
    ASSERT_EQ(record[k].shape(), expect.shape()) << "stage " << k;
    for (std::int64_t i = 0; i < expect.numel(); ++i) {
      EXPECT_FLOAT_EQ(record[k][i], expect[i]) << "stage " << k;
    }
  }
}

TEST(Sequential, ForwardSpanPartialStart) {
  Rng rng(26);
  Sequential seq;
  seq.emplace<Linear>(3, 3)->init(rng);
  seq.emplace<Linear>(3, 3)->init(rng);
  const Tensor x = Tensor::randn({1, 3}, rng);
  const Tensor full = seq.forward_cached(x);
  // Re-running from stage 1 with the cached stage-1 input reproduces the
  // output; from size() it is a no-op on the given input.
  const Tensor tail = seq.forward_span(1, seq.cached_input(1), nullptr);
  for (std::int64_t i = 0; i < full.numel(); ++i) EXPECT_FLOAT_EQ(tail[i], full[i]);
  const Tensor same = seq.forward_span(seq.size(), full, nullptr);
  for (std::int64_t i = 0; i < full.numel(); ++i) EXPECT_FLOAT_EQ(same[i], full[i]);
  EXPECT_THROW(seq.forward_span(seq.size() + 1, full, nullptr), std::out_of_range);
}

TEST(Identity, PassesThroughBothDirections) {
  Rng rng(27);
  Identity id;
  const Tensor x = Tensor::randn({2, 3}, rng);
  const Tensor y = id.forward(x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
  const Tensor g = id.backward(x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(g[i], x[i]);
}

TEST(Sequential, ReplaceChildSwapsModuleAndKeepsName) {
  Rng rng(28);
  Sequential seq;
  seq.emplace_named<Linear>("fc", 4, 4)->init(rng);
  seq.emplace_named<Activation>("act", Act::kRelu);
  seq.replace_child(1, std::make_unique<Identity>());
  EXPECT_EQ(seq.child(1).type_name(), "Identity");
  EXPECT_EQ(seq.child_name(1), "act");
  EXPECT_THROW(seq.replace_child(5, std::make_unique<Identity>()), std::out_of_range);
  // Cache is invalidated by the swap.
  seq.forward_cached(Tensor::randn({1, 4}, rng));
  seq.replace_child(1, std::make_unique<Identity>());
  EXPECT_THROW(seq.forward_from(0), std::logic_error);
}

TEST(Conv2d, FoldScaleShiftMatchesManualAffine) {
  Rng rng(29);
  Conv2d conv(2, 3, 1, 1, 0, 1, /*bias=*/false);
  conv.init(rng);
  const Tensor x = Tensor::randn({2, 2, 3, 3}, rng);
  const Tensor before = conv.forward(x);
  const std::vector<float> scale = {2.0F, 0.5F, -1.0F};
  const std::vector<float> shift = {0.1F, -0.2F, 0.3F};
  conv.fold_scale_shift(scale, shift);
  const Tensor after = conv.forward(x);
  for (std::int64_t s = 0; s < 2; ++s) {
    for (std::int64_t c = 0; c < 3; ++c) {
      for (std::int64_t p = 0; p < 9; ++p) {
        const float expect = before.data()[(s * 3 + c) * 9 + p] *
                                 scale[static_cast<std::size_t>(c)] +
                             shift[static_cast<std::size_t>(c)];
        EXPECT_NEAR(after.data()[(s * 3 + c) * 9 + p], expect, 1e-5F);
      }
    }
  }
  EXPECT_THROW(conv.fold_scale_shift(std::vector<float>{1.0F}, shift), std::invalid_argument);
}

TEST(Sequential, StateDictRoundTrip) {
  Rng rng(24);
  Sequential a;
  a.emplace_named<Linear>("fc1", 4, 4)->init(rng);
  a.emplace_named<Linear>("fc2", 4, 2)->init(rng);
  Sequential b;
  b.emplace_named<Linear>("fc1", 4, 4);
  b.emplace_named<Linear>("fc2", 4, 2);
  load_state(b, extract_state(a));
  const Tensor x = Tensor::randn({3, 4}, rng);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  for (std::int64_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(Sequential, LoadStateRejectsMissingOrMismatched) {
  Sequential a;
  a.emplace_named<Linear>("fc", 4, 4);
  EXPECT_THROW(load_state(a, {}), std::runtime_error);
  clado::tensor::StateDict bad;
  bad.emplace("fc.weight", Tensor({2, 2}));
  bad.emplace("fc.bias", Tensor({4}));
  EXPECT_THROW(load_state(a, bad), std::runtime_error);
}

}  // namespace
}  // namespace clado::nn
