#include "clado/tensor/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

namespace clado::tensor {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(7);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sq += u * u;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0, cube = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
    cube += x * x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
  EXPECT_NEAR(cube / n, 0.0, 0.1);  // symmetry
}

TEST(Rng, NormalWithParams) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.02);
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(17);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 / 5);
}

TEST(Rng, UniformIntOneIsAlwaysZero) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(1), 0U);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  // The child stream must differ from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(31);
  Rng b(31);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

}  // namespace
}  // namespace clado::tensor
