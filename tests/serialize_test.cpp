#include "clado/tensor/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "clado/fault/fault.h"

namespace clado::tensor {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "clado_serialize_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(SerializeTest, RoundTripPreservesShapesAndValues) {
  Rng rng(1);
  StateDict dict;
  dict.emplace("conv.weight", Tensor::randn({4, 3, 3, 3}, rng));
  dict.emplace("fc.bias", Tensor::randn({10}, rng));
  dict.emplace("scalarish", Tensor({1}, 3.25F));
  save_state_dict(dict, path("model.bin"));

  const StateDict loaded = load_state_dict(path("model.bin"));
  ASSERT_EQ(loaded.size(), dict.size());
  for (const auto& [name, tensor] : dict) {
    const auto it = loaded.find(name);
    ASSERT_NE(it, loaded.end()) << name;
    ASSERT_EQ(it->second.shape(), tensor.shape());
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
      EXPECT_EQ(it->second[i], tensor[i]);
    }
  }
}

TEST_F(SerializeTest, EmptyDictRoundTrips) {
  save_state_dict({}, path("empty.bin"));
  EXPECT_TRUE(load_state_dict(path("empty.bin")).empty());
}

TEST_F(SerializeTest, ExistsDetectsMagic) {
  EXPECT_FALSE(state_dict_exists(path("missing.bin")));
  save_state_dict({{"t", Tensor({2})}}, path("good.bin"));
  EXPECT_TRUE(state_dict_exists(path("good.bin")));

  std::ofstream bad(path("bad.bin"), std::ios::binary);
  bad << "not a state dict";
  bad.close();
  EXPECT_FALSE(state_dict_exists(path("bad.bin")));
}

TEST_F(SerializeTest, LoadRejectsBadMagic) {
  std::ofstream bad(path("garbage.bin"), std::ios::binary);
  bad << "XXXXYYYYZZZZ0000";
  bad.close();
  EXPECT_THROW(load_state_dict(path("garbage.bin")), std::runtime_error);
}

TEST_F(SerializeTest, LoadRejectsTruncatedFile) {
  save_state_dict({{"weights", Tensor({128}, 1.0F)}}, path("full.bin"));
  // Truncate mid-payload.
  const auto full_size = std::filesystem::file_size(path("full.bin"));
  std::filesystem::resize_file(path("full.bin"), full_size / 2);
  EXPECT_THROW(load_state_dict(path("full.bin")), std::runtime_error);
}

TEST_F(SerializeTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_state_dict(path("never_written.bin")), std::runtime_error);
}

TEST_F(SerializeTest, Crc32MatchesKnownVectorAndChains) {
  // IEEE 802.3 check value for "123456789".
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926U);
  // Incremental computation continues from a prior seed.
  EXPECT_EQ(crc32(s + 4, 5, crc32(s, 4)), 0xCBF43926U);
  EXPECT_EQ(crc32(nullptr, 0), 0U);
}

TEST_F(SerializeTest, LegacyV1FileStillLoads) {
  // Hand-written v1 container: magic, version=1, then the payload with no
  // checksum — the format every pre-v2 artifact on disk uses.
  {
    std::ofstream f(path("v1.bin"), std::ios::binary);
    const auto put = [&f](const void* p, std::size_t n) {
      f.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    };
    const std::uint32_t magic = 0x434C4144;
    const std::uint32_t version = 1;
    const std::uint64_t count = 1;
    put(&magic, 4);
    put(&version, 4);
    put(&count, 8);
    const std::string name = "fc.bias";
    const auto name_len = static_cast<std::uint32_t>(name.size());
    const std::uint32_t rank = 1;
    const std::int64_t dim0 = 3;
    const float data[3] = {1.5F, -2.0F, 0.25F};
    put(&name_len, 4);
    put(name.data(), name.size());
    put(&rank, 4);
    put(&dim0, 8);
    put(data, sizeof(data));
  }

  const auto probe = try_load_state_dict(path("v1.bin"));
  ASSERT_TRUE(probe.ok());
  const StateDict loaded = load_state_dict(path("v1.bin"));
  ASSERT_EQ(loaded.size(), 1U);
  const auto it = loaded.find("fc.bias");
  ASSERT_NE(it, loaded.end());
  ASSERT_EQ(it->second.shape(), Shape{3});
  EXPECT_EQ(it->second[0], 1.5F);
  EXPECT_EQ(it->second[1], -2.0F);
  EXPECT_EQ(it->second[2], 0.25F);
}

TEST_F(SerializeTest, FlippedPayloadByteFailsTheChecksum) {
  save_state_dict({{"w", Tensor({16}, 1.0F)}}, path("flip.bin"));
  ASSERT_TRUE(load_state_dict(path("flip.bin")).size() == 1);

  // Header is magic+version+CRC (12 bytes); offset 40 is inside the tensor
  // data, where a flipped bit would otherwise load as a silently-wrong
  // float.
  {
    std::fstream f(path("flip.bin"), std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(40);
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x01);
    f.seekp(40);
    f.write(&c, 1);
  }

  EXPECT_EQ(try_load_state_dict(path("flip.bin")).status, LoadStatus::kCorrupt);
  EXPECT_THROW(load_state_dict(path("flip.bin")), std::runtime_error);
}

TEST_F(SerializeTest, TryLoadDistinguishesMissingCorruptAndVersion) {
  EXPECT_EQ(try_load_state_dict(path("absent.bin")).status, LoadStatus::kMissing);

  {
    std::ofstream bad(path("badmagic.bin"), std::ios::binary);
    bad << "XXXXYYYYZZZZ0000";
  }
  EXPECT_EQ(try_load_state_dict(path("badmagic.bin")).status, LoadStatus::kCorrupt);

  {
    std::ofstream future(path("future.bin"), std::ios::binary);
    const std::uint32_t magic = 0x434C4144;
    const std::uint32_t version = 99;
    future.write(reinterpret_cast<const char*>(&magic), 4);
    future.write(reinterpret_cast<const char*>(&version), 4);
  }
  EXPECT_EQ(try_load_state_dict(path("future.bin")).status, LoadStatus::kVersionMismatch);

  save_state_dict({{"t", Tensor({2}, 2.0F)}}, path("good.bin"));
  const auto good = try_load_state_dict(path("good.bin"));
  EXPECT_EQ(good.status, LoadStatus::kOk);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.dict.size(), 1U);

  EXPECT_STREQ(load_status_name(LoadStatus::kMissing), "missing");
  EXPECT_STREQ(load_status_name(LoadStatus::kVersionMismatch), "version_mismatch");
}

TEST_F(SerializeTest, SaveIsAtomicUnderInjectedWriteFailure) {
  save_state_dict({{"v", Tensor({4}, 1.0F)}}, path("atomic.bin"));
  EXPECT_FALSE(std::filesystem::exists(path("atomic.bin") + ".tmp"));

  clado::fault::arm_from(clado::fault::Site::kIoWrite, 1);
  EXPECT_THROW(save_state_dict({{"v", Tensor({4}, 2.0F)}}, path("atomic.bin")),
               clado::fault::FaultInjected);
  clado::fault::disarm_all();

  // The failed save left the previous complete file behind, untouched.
  const StateDict loaded = load_state_dict(path("atomic.bin"));
  ASSERT_EQ(loaded.size(), 1U);
  EXPECT_EQ(loaded.at("v")[0], 1.0F);
  EXPECT_FALSE(std::filesystem::exists(path("atomic.bin") + ".tmp"));
}

TEST_F(SerializeTest, InjectedReadFaultSurfacesAsCorrupt) {
  save_state_dict({{"v", Tensor({4}, 1.0F)}}, path("readfault.bin"));
  clado::fault::arm_one_shot(clado::fault::Site::kIoRead, 1);
  EXPECT_EQ(try_load_state_dict(path("readfault.bin")).status, LoadStatus::kCorrupt);
  clado::fault::disarm_all();
  // One-shot: the next read is clean.
  EXPECT_TRUE(try_load_state_dict(path("readfault.bin")).ok());
}

}  // namespace
}  // namespace clado::tensor
