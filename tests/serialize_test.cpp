#include "clado/tensor/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace clado::tensor {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "clado_serialize_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(SerializeTest, RoundTripPreservesShapesAndValues) {
  Rng rng(1);
  StateDict dict;
  dict.emplace("conv.weight", Tensor::randn({4, 3, 3, 3}, rng));
  dict.emplace("fc.bias", Tensor::randn({10}, rng));
  dict.emplace("scalarish", Tensor({1}, 3.25F));
  save_state_dict(dict, path("model.bin"));

  const StateDict loaded = load_state_dict(path("model.bin"));
  ASSERT_EQ(loaded.size(), dict.size());
  for (const auto& [name, tensor] : dict) {
    const auto it = loaded.find(name);
    ASSERT_NE(it, loaded.end()) << name;
    ASSERT_EQ(it->second.shape(), tensor.shape());
    for (std::int64_t i = 0; i < tensor.numel(); ++i) {
      EXPECT_EQ(it->second[i], tensor[i]);
    }
  }
}

TEST_F(SerializeTest, EmptyDictRoundTrips) {
  save_state_dict({}, path("empty.bin"));
  EXPECT_TRUE(load_state_dict(path("empty.bin")).empty());
}

TEST_F(SerializeTest, ExistsDetectsMagic) {
  EXPECT_FALSE(state_dict_exists(path("missing.bin")));
  save_state_dict({{"t", Tensor({2})}}, path("good.bin"));
  EXPECT_TRUE(state_dict_exists(path("good.bin")));

  std::ofstream bad(path("bad.bin"), std::ios::binary);
  bad << "not a state dict";
  bad.close();
  EXPECT_FALSE(state_dict_exists(path("bad.bin")));
}

TEST_F(SerializeTest, LoadRejectsBadMagic) {
  std::ofstream bad(path("garbage.bin"), std::ios::binary);
  bad << "XXXXYYYYZZZZ0000";
  bad.close();
  EXPECT_THROW(load_state_dict(path("garbage.bin")), std::runtime_error);
}

TEST_F(SerializeTest, LoadRejectsTruncatedFile) {
  save_state_dict({{"weights", Tensor({128}, 1.0F)}}, path("full.bin"));
  // Truncate mid-payload.
  const auto full_size = std::filesystem::file_size(path("full.bin"));
  std::filesystem::resize_file(path("full.bin"), full_size / 2);
  EXPECT_THROW(load_state_dict(path("full.bin")), std::runtime_error);
}

TEST_F(SerializeTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_state_dict(path("never_written.bin")), std::runtime_error);
}

}  // namespace
}  // namespace clado::tensor
