#include "clado/models/builders.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>

#include "clado/models/zoo.h"
#include "clado/nn/hvp.h"
#include "clado/obs/obs.h"
#include "clado/tensor/serialize.h"

namespace clado::models {
namespace {

using clado::tensor::Rng;
using clado::tensor::Tensor;

class BuilderTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BuilderTest, ForwardShapeAndFinite) {
  Rng rng(1);
  Model m = build_by_name(GetParam(), rng, 16);
  Rng drng(2);
  const Tensor x = Tensor::randn({4, 3, 16, 16}, drng);
  m.net->set_training(false);
  const Tensor y = m.net->forward(x);
  EXPECT_EQ(y.shape(), (clado::tensor::Shape{4, 16}));
  for (float v : y.flat()) EXPECT_TRUE(std::isfinite(v));
}

TEST_P(BuilderTest, QuantLayersDiscoveredWithMonotoneStages) {
  Rng rng(3);
  Model m = build_by_name(GetParam(), rng, 16);
  EXPECT_GE(m.num_quant_layers(), 10) << "enough MPQ decision variables";
  int prev_stage = -1;
  std::set<std::string> names;
  for (const auto& l : m.quant_layers) {
    EXPECT_GE(l.stage, prev_stage) << "layers must be in execution order";
    prev_stage = l.stage;
    EXPECT_TRUE(names.insert(l.name).second) << "duplicate layer name " << l.name;
    EXPECT_NE(l.layer, nullptr);
  }
}

TEST_P(BuilderTest, BackwardRunsThroughWholeModel) {
  Rng rng(4);
  Model m = build_by_name(GetParam(), rng, 16);
  Rng drng(5);
  const Tensor x = Tensor::randn({2, 3, 16, 16}, drng);
  std::vector<std::int64_t> labels = {0, 7};
  m.net->set_training(true);
  clado::nn::zero_all_grads(*m.net);
  clado::nn::loss_and_backward(*m.net, x, labels);
  // Every quantizable layer should receive a gradient.
  for (const auto& l : m.quant_layers) {
    EXPECT_GT(l.layer->weight_param().grad.sq_norm(), 0.0F) << l.name;
  }
}

TEST_P(BuilderTest, ActQuantCalibrationChangesNothingDramatically) {
  Rng rng(6);
  Model m = build_by_name(GetParam(), rng, 16);
  Rng drng(7);
  clado::data::Batch batch;
  batch.images = Tensor::randn({8, 3, 16, 16}, drng);
  for (int i = 0; i < 8; ++i) batch.labels.push_back(i % 16);

  m.net->set_training(false);
  const Tensor before = m.net->forward(batch.images);
  m.calibrate_activations(batch);
  const Tensor after = m.net->forward(batch.images);
  // 8-bit activation quantization is nearly lossless relative to the
  // logit scale (errors accumulate across stages, so compare relatively).
  double max_abs_logit = 1.0;
  for (float v : before.flat()) max_abs_logit = std::max(max_abs_logit, std::abs(static_cast<double>(v)));
  double max_err = 0.0;
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    max_err = std::max(max_err, std::abs(static_cast<double>(after[i]) - before[i]));
  }
  // The transformer's residual stream has a much wider dynamic range than
  // post-BN CNN activations, so whole-tensor 8-bit quantization is coarser
  // there (the reason the paper uses affine schemes for ViT).
  const double tol = GetParam() == "vit_mini" ? 0.45 : 0.15;
  EXPECT_LT(max_err / max_abs_logit, tol);
}

TEST_P(BuilderTest, DeterministicConstruction) {
  Rng rng_a(8);
  Rng rng_b(8);
  Model a = build_by_name(GetParam(), rng_a, 16);
  Model b = build_by_name(GetParam(), rng_b, 16);
  const auto sa = clado::nn::extract_state(*a.net);
  const auto sb = clado::nn::extract_state(*b.net);
  ASSERT_EQ(sa.size(), sb.size());
  for (const auto& [name, tensor] : sa) {
    const auto& other = sb.at(name);
    for (std::int64_t i = 0; i < tensor.numel(); ++i) ASSERT_EQ(tensor[i], other[i]) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, BuilderTest, ::testing::ValuesIn(model_names()));

TEST(Builders, CandidateBitsMatchPaper) {
  Rng rng(9);
  EXPECT_EQ(build_resnet_a(rng).candidate_bits, (std::vector<int>{2, 4, 8}));
  EXPECT_EQ(build_mobilenet_v3_mini(rng).candidate_bits, (std::vector<int>{4, 6, 8}));
  EXPECT_EQ(build_vit_mini(rng).candidate_bits, (std::vector<int>{2, 4, 8}));
}

TEST(Builders, SchemesMatchPaper) {
  Rng rng(10);
  EXPECT_EQ(build_resnet_a(rng).scheme, clado::quant::WeightScheme::kPerTensorSymmetric);
  EXPECT_EQ(build_regnet_mini(rng).scheme, clado::quant::WeightScheme::kPerTensorSymmetric);
  EXPECT_EQ(build_mobilenet_v3_mini(rng).scheme, clado::quant::WeightScheme::kPerChannelAffine);
  EXPECT_EQ(build_vit_mini(rng).scheme, clado::quant::WeightScheme::kPerChannelAffine);
}

TEST(Builders, UnknownNameThrows) {
  Rng rng(11);
  EXPECT_THROW(build_by_name("alexnet", rng), std::invalid_argument);
}

TEST(Builders, VitUsesPaperLayerNaming) {
  Rng rng(12);
  Model m = build_vit_mini(rng);
  ASSERT_GE(m.num_quant_layers(), 24);
  EXPECT_EQ(m.quant_layers[0].name, "layer.0.attention.attention.query");
  EXPECT_EQ(m.quant_layers[5].name, "layer.0.output.dense");
  EXPECT_EQ(m.quant_layers.back().name, "classifier");
}

TEST(Model, AccuracyOnIsChunkingInvariant) {
  Rng rng(20);
  Model m = build_resnet_a(rng, 8);
  clado::data::SynthCvDataset::Config dc;
  dc.num_classes = 8;
  dc.seed = 9;
  clado::data::SynthCvDataset ds(dc);
  const double big_chunks = m.accuracy_on(ds, 200, 128);
  const double small_chunks = m.accuracy_on(ds, 200, 33);
  EXPECT_NEAR(big_chunks, small_chunks, 1e-9);
}

TEST(Model, UniformSizeBytesScalesWithBits) {
  Rng rng(21);
  Model m = build_regnet_mini(rng, 8);
  EXPECT_DOUBLE_EQ(m.uniform_size_bytes(8), 4.0 * m.uniform_size_bytes(2));
  EXPECT_DOUBLE_EQ(m.uniform_size_bytes(4), 2.0 * m.uniform_size_bytes(2));
}

TEST(Model, ActQuantModeToggles) {
  Rng rng(22);
  Model m = build_resnet_a(rng, 8);
  ASSERT_FALSE(m.act_quants.empty());
  m.set_act_quant_mode(clado::quant::ActQuantMode::kObserve);
  for (auto* aq : m.act_quants) {
    EXPECT_EQ(aq->mode(), clado::quant::ActQuantMode::kObserve);
  }
  m.set_act_quant_mode(clado::quant::ActQuantMode::kBypass);
  for (auto* aq : m.act_quants) {
    EXPECT_EQ(aq->mode(), clado::quant::ActQuantMode::kBypass);
  }
}

TEST(Model, CalibrationFreezesEveryObserver) {
  Rng rng(23);
  Model m = build_resnet_a(rng, 8);
  clado::data::Batch batch;
  Rng drng(24);
  batch.images = Tensor::randn({8, 3, 16, 16}, drng);
  for (int i = 0; i < 8; ++i) batch.labels.push_back(i % 8);
  m.calibrate_activations(batch);
  for (auto* aq : m.act_quants) {
    EXPECT_TRUE(aq->calibrated());
    EXPECT_EQ(aq->mode(), clado::quant::ActQuantMode::kQuantize);
  }
}

TEST(Zoo, ArtifactCacheRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "clado_zoo_test";
  std::filesystem::remove_all(dir);
  ZooConfig cfg;
  cfg.artifacts_dir = dir.string();
  cfg.train_size = 128;   // keep the test fast: a handful of steps
  cfg.val_size = 128;
  cfg.num_classes = 8;

  // First call trains and saves; second call must load identical weights.
  // Use the cheapest model for speed.
  unsetenv("CLADO_ARTIFACTS_DIR");
  TrainedModel first = get_or_train("vit_mini", cfg);
  ASSERT_TRUE(std::filesystem::exists(dir / "vit_mini.bin"));
  TrainedModel second = get_or_train("vit_mini", cfg);
  const auto sa = clado::nn::extract_state(*first.model.net);
  const auto sb = clado::nn::extract_state(*second.model.net);
  for (const auto& [name, tensor] : sa) {
    const auto& other = sb.at(name);
    for (std::int64_t i = 0; i < tensor.numel(); ++i) ASSERT_EQ(tensor[i], other[i]) << name;
  }
  EXPECT_DOUBLE_EQ(first.val_accuracy, second.val_accuracy);
  std::filesystem::remove_all(dir);
}

TEST(Zoo, CorruptArtifactIsRecoveredByRetraining) {
  const auto dir = std::filesystem::temp_directory_path() / "clado_zoo_recovery_test";
  std::filesystem::remove_all(dir);
  ZooConfig cfg;
  cfg.artifacts_dir = dir.string();
  cfg.train_size = 128;
  cfg.val_size = 128;
  cfg.num_classes = 8;
  unsetenv("CLADO_ARTIFACTS_DIR");

  TrainedModel reference = get_or_train("vit_mini", cfg);
  const auto artifact = dir / "vit_mini.bin";
  ASSERT_TRUE(std::filesystem::exists(artifact));
  const auto ref_state = clado::nn::extract_state(*reference.model.net);

  const auto expect_reference_weights = [&](const TrainedModel& tm) {
    const auto state = clado::nn::extract_state(*tm.model.net);
    for (const auto& [name, tensor] : ref_state) {
      const auto it = state.find(name);
      ASSERT_NE(it, state.end()) << name;
      for (std::int64_t i = 0; i < tensor.numel(); ++i) {
        ASSERT_EQ(it->second[i], tensor[i]) << name;
      }
    }
  };

  // Flip one payload byte: the checksum must catch it, and get_or_train
  // must delete the artifact and retrain. Training restarts from the same
  // build seed and is deterministic, so the recovered weights are
  // bit-identical to the reference (the strongest possible check that the
  // rebuild path reconstructs the exact cache-less run).
  {
    std::fstream f(artifact, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(40);
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x01);
    f.seekp(40);
    f.write(&c, 1);
  }
  const std::int64_t recoveries = clado::obs::counter("zoo.cache_recoveries").value();
  TrainedModel recovered = get_or_train("vit_mini", cfg);
  EXPECT_EQ(clado::obs::counter("zoo.cache_recoveries").value() - recoveries, 1);
  expect_reference_weights(recovered);
  EXPECT_DOUBLE_EQ(recovered.val_accuracy, reference.val_accuracy);
  // The recovery re-saved a valid artifact.
  EXPECT_TRUE(clado::tensor::try_load_state_dict(artifact.string()).ok());

  // A future-version artifact (written by a newer build) takes the same
  // recovery path instead of being half-parsed.
  {
    std::ofstream f(artifact, std::ios::binary | std::ios::trunc);
    const std::uint32_t magic = 0x434C4144;
    const std::uint32_t version = 99;
    f.write(reinterpret_cast<const char*>(&magic), 4);
    f.write(reinterpret_cast<const char*>(&version), 4);
  }
  const std::int64_t recoveries2 = clado::obs::counter("zoo.cache_recoveries").value();
  TrainedModel recovered2 = get_or_train("vit_mini", cfg);
  EXPECT_EQ(clado::obs::counter("zoo.cache_recoveries").value() - recoveries2, 1);
  expect_reference_weights(recovered2);
  std::filesystem::remove_all(dir);
}

TEST(Zoo, ResolveArtifactsDirHonorsEnv) {
  ZooConfig cfg;
  cfg.artifacts_dir = "fallback";
  setenv("CLADO_ARTIFACTS_DIR", "/tmp/from_env", 1);
  EXPECT_EQ(resolve_artifacts_dir(cfg), "/tmp/from_env");
  unsetenv("CLADO_ARTIFACTS_DIR");
  EXPECT_EQ(resolve_artifacts_dir(cfg), "fallback");
}

}  // namespace
}  // namespace clado::models
