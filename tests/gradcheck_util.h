// Shared numerical-gradient checking for layer tests.
//
// For a module M and random projection weights r, defines the scalar
//   L(x, θ) = Σ r ⊙ M(x)
// and compares analytic gradients (backward pass with grad_output = r)
// against central finite differences. Works in float, so tolerances are
// loose-ish; every layer's backward has to pass for the HVP-based Table 2
// experiment to be meaningful.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "clado/nn/module.h"

namespace clado::testing {

using clado::nn::Module;
using clado::nn::ParamRef;
using clado::tensor::Rng;
using clado::tensor::Tensor;

inline double projected_output(Module& module, const Tensor& input, const Tensor& projection) {
  const Tensor out = module.forward(input);
  EXPECT_EQ(out.shape(), projection.shape());
  double acc = 0.0;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    acc += static_cast<double>(out[i]) * projection[i];
  }
  return acc;
}

/// Checks dL/dx and dL/dθ for every trainable parameter. `eps` is the
/// finite-difference step; `tol` is the mixed absolute/relative tolerance.
inline void check_gradients(Module& module, Tensor input, const Tensor& projection,
                            double eps = 1e-3, double tol = 2e-2,
                            std::int64_t max_checked = 64) {
  std::vector<ParamRef> params;
  module.collect_params("", params);
  for (auto& p : params) p.param->zero_grad();

  module.forward(input);  // populate stashes
  // Analytic pass.
  module.forward(input);
  const Tensor grad_input = module.backward(projection);

  auto expect_close = [&](double analytic, double numeric, const std::string& what) {
    const double scale = std::max({1.0, std::abs(analytic), std::abs(numeric)});
    EXPECT_NEAR(analytic, numeric, tol * scale) << what;
  };

  // Input gradient (subsample large tensors for speed).
  const std::int64_t in_n = input.numel();
  const std::int64_t in_stride = std::max<std::int64_t>(1, in_n / max_checked);
  for (std::int64_t i = 0; i < in_n; i += in_stride) {
    const float saved = input[i];
    input[i] = saved + static_cast<float>(eps);
    const double plus = projected_output(module, input, projection);
    input[i] = saved - static_cast<float>(eps);
    const double minus = projected_output(module, input, projection);
    input[i] = saved;
    expect_close(grad_input[i], (plus - minus) / (2.0 * eps), "input grad @" + std::to_string(i));
  }

  // Parameter gradients.
  for (auto& p : params) {
    if (!p.param->trainable) continue;
    Tensor& w = p.param->value;
    const std::int64_t n = w.numel();
    const std::int64_t stride = std::max<std::int64_t>(1, n / max_checked);
    for (std::int64_t i = 0; i < n; i += stride) {
      const float saved = w[i];
      w[i] = saved + static_cast<float>(eps);
      const double plus = projected_output(module, input, projection);
      w[i] = saved - static_cast<float>(eps);
      const double minus = projected_output(module, input, projection);
      w[i] = saved;
      expect_close(p.param->grad[i], (plus - minus) / (2.0 * eps),
                   p.name + " grad @" + std::to_string(i));
    }
  }
}

}  // namespace clado::testing
