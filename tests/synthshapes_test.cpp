#include "clado/data/synthshapes.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "clado/models/model.h"
#include "clado/models/zoo.h"
#include "clado/nn/blocks.h"
#include "clado/nn/hvp.h"
#include "clado/nn/layers.h"
#include "clado/nn/optimizer.h"
#include "clado/quant/qat.h"

namespace clado::data {
namespace {

SynthShapesDataset::Config config(std::uint64_t seed = 5) {
  SynthShapesDataset::Config c;
  c.seed = seed;
  return c;
}

TEST(SynthShapes, Deterministic) {
  SynthShapesDataset a(config());
  SynthShapesDataset b(config());
  for (std::int64_t idx : {0, 3, 777}) {
    EXPECT_EQ(a.label_of(idx), b.label_of(idx));
    const Tensor ia = a.image_of(idx);
    const Tensor ib = b.image_of(idx);
    for (std::int64_t i = 0; i < ia.numel(); ++i) ASSERT_EQ(ia[i], ib[i]);
  }
}

TEST(SynthShapes, ShapeAndFinite) {
  SynthShapesDataset ds(config());
  const Tensor img = ds.image_of(42);
  EXPECT_EQ(img.shape(), (clado::tensor::Shape{3, 16, 16}));
  for (float v : img.flat()) EXPECT_TRUE(std::isfinite(v));
}

TEST(SynthShapes, LabelsBalanced) {
  SynthShapesDataset ds(config());
  std::vector<int> counts(16, 0);
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    const std::int64_t label = ds.label_of(i);
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 16);
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 16, n / 16 / 2);
}

TEST(SynthShapes, ClassMeansSeparated) {
  SynthShapesDataset ds(config());
  auto class_mean = [&](std::int64_t cls) {
    Tensor mean({3, 16, 16});
    int count = 0;
    for (std::int64_t i = 0; count < 30; ++i) {
      if (ds.label_of(i) != cls) continue;
      mean += ds.image_of(i);
      ++count;
    }
    mean *= 1.0F / static_cast<float>(count);
    return mean;
  };
  // Different shape (0 vs 1) and different quadrant (0 vs 4).
  const Tensor m0 = class_mean(0);
  for (std::int64_t other : {1, 4, 9}) {
    Tensor diff = m0;
    diff -= class_mean(other);
    const double separation = std::sqrt(static_cast<double>(diff.sq_norm()));
    const double scale = std::sqrt(static_cast<double>(m0.sq_norm()));
    EXPECT_GT(separation, 0.25 * scale) << "class " << other;
  }
}

TEST(SynthShapes, RejectsBadConfig) {
  SynthShapesDataset::Config c;
  c.num_classes = 20;
  EXPECT_THROW(SynthShapesDataset{c}, std::invalid_argument);
  c = {};
  c.image_size = 4;
  EXPECT_THROW(SynthShapesDataset{c}, std::invalid_argument);
}

TEST(SynthShapes, SmallCnnLearnsTheTask) {
  // Substrate sanity: a small CNN must learn well above chance quickly,
  // and quantization headroom must exist (2-bit degrades).
  using namespace clado::nn;
  clado::tensor::Rng rng(9);
  clado::models::Model m;
  m.net = std::make_unique<Sequential>();
  m.candidate_bits = {2, 4, 8};
  m.scheme = clado::quant::WeightScheme::kPerTensorSymmetric;
  m.num_classes = 16;
  {
    auto stem = std::make_unique<Sequential>();
    stem->emplace_named<Conv2d>("conv1", 3, 8, 3, 1, 1, 1, false)->init(rng);
    stem->emplace_named<BatchNorm2d>("bn1", 8);
    stem->emplace_named<Activation>("act", Act::kRelu);
    m.net->push_back(std::move(stem), "stem");
  }
  {
    auto blk = std::make_unique<Sequential>();
    blk->emplace_named<Conv2d>("conv1", 8, 16, 3, 2, 1, 1, false)->init(rng);
    blk->emplace_named<BatchNorm2d>("bn1", 16);
    blk->emplace_named<Activation>("act", Act::kRelu);
    m.net->push_back(std::move(blk), "block1");
  }
  m.net->emplace_named<GlobalAvgPool>("pool");
  m.net->emplace_named<Linear>("fc", 16, 16)->init(rng);
  m.finalize();

  SynthShapesDataset train(config(100));
  SynthShapesDataset val(config(101));

  // Minimal training loop over shape batches.
  clado::nn::Sgd opt(*m.net, {});
  for (int epoch = 0; epoch < 4; ++epoch) {
    m.net->set_training(true);
    for (std::int64_t first = 0; first < 1024; first += 64) {
      const Batch batch = train.make_range_batch(first, 64);
      opt.zero_grad();
      clado::nn::loss_and_backward(*m.net, batch.images, batch.labels);
      opt.clip_grad_norm(5.0);
      opt.step();
    }
  }
  m.net->set_training(false);
  const Batch vb = val.make_range_batch(0, 256);
  const double acc = m.accuracy(vb);
  EXPECT_GT(acc, 0.5);  // chance is 1/16

  // 2-bit UPQ must hurt (quantization headroom exists on this substrate).
  clado::quant::WeightSnapshot snap(m.quant_layers);
  clado::quant::bake_weights(m.quant_layers, std::vector<int>(m.quant_layers.size(), 2),
                             m.scheme);
  EXPECT_LT(m.accuracy(vb), acc - 0.1);
}

}  // namespace
}  // namespace clado::data
