#include "clado/data/synthcv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace clado::data {
namespace {

SynthCvDataset::Config small_config(std::uint64_t seed = 7) {
  SynthCvDataset::Config c;
  c.num_classes = 8;
  c.seed = seed;
  return c;
}

TEST(SynthCv, SamplesAreDeterministic) {
  SynthCvDataset a(small_config());
  SynthCvDataset b(small_config());
  for (std::int64_t idx : {0, 1, 97, 5000}) {
    EXPECT_EQ(a.label_of(idx), b.label_of(idx));
    const Tensor ia = a.image_of(idx);
    const Tensor ib = b.image_of(idx);
    for (std::int64_t i = 0; i < ia.numel(); ++i) EXPECT_EQ(ia[i], ib[i]);
  }
}

TEST(SynthCv, DifferentSeedsProduceDifferentData) {
  SynthCvDataset a(small_config(7));
  SynthCvDataset b(small_config(8));
  const Tensor ia = a.image_of(0);
  const Tensor ib = b.image_of(0);
  int same = 0;
  for (std::int64_t i = 0; i < ia.numel(); ++i) {
    if (ia[i] == ib[i]) ++same;
  }
  EXPECT_LT(same, ia.numel() / 10);
}

TEST(SynthCv, LabelsInRangeAndBalanced) {
  SynthCvDataset ds(small_config());
  std::vector<int> counts(8, 0);
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    const std::int64_t label = ds.label_of(i);
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 8);
    ++counts[static_cast<std::size_t>(label)];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 8, n / 8 / 3);
}

TEST(SynthCv, ImageShapeAndFiniteValues) {
  SynthCvDataset ds(small_config());
  const Tensor img = ds.image_of(3);
  EXPECT_EQ(img.shape(), (clado::tensor::Shape{3, 16, 16}));
  for (float v : img.flat()) EXPECT_TRUE(std::isfinite(v));
}

TEST(SynthCv, ClassMeansAreSeparated) {
  // Per-sample noise is strong by design (so quantization matters), but
  // averaging samples of one class must reveal a class-specific template
  // distinct from other classes' templates.
  SynthCvDataset ds(small_config());
  auto class_mean = [&](std::int64_t cls) {
    Tensor mean({3, 16, 16});
    int count = 0;
    for (std::int64_t i = 0; count < 40; ++i) {
      if (ds.label_of(i) != cls) continue;
      mean += ds.image_of(i);
      ++count;
    }
    mean *= 1.0F / static_cast<float>(count);
    return mean;
  };
  const Tensor m0 = class_mean(0);
  const Tensor m4 = class_mean(4);
  Tensor diff = m0;
  diff -= m4;
  const double separation = std::sqrt(static_cast<double>(diff.sq_norm()));
  const double scale = std::sqrt(static_cast<double>(m0.sq_norm()));
  EXPECT_GT(separation, 0.3 * scale);
}

TEST(SynthCv, MakeBatchAssemblesIndices) {
  SynthCvDataset ds(small_config());
  const std::vector<std::int64_t> idx = {5, 0, 42};
  const Batch batch = ds.make_batch(idx);
  EXPECT_EQ(batch.size(), 3);
  EXPECT_EQ(batch.images.shape(), (clado::tensor::Shape{3, 3, 16, 16}));
  ASSERT_EQ(batch.labels.size(), 3U);
  EXPECT_EQ(batch.labels[0], ds.label_of(5));
  EXPECT_EQ(batch.labels[2], ds.label_of(42));
  // Image payloads match image_of.
  const Tensor direct = ds.image_of(0);
  for (std::int64_t i = 0; i < direct.numel(); ++i) {
    EXPECT_EQ(batch.images.data()[direct.numel() + i], direct[i]);
  }
}

TEST(SynthCv, RangeBatch) {
  SynthCvDataset ds(small_config());
  const Batch batch = ds.make_range_batch(10, 4);
  EXPECT_EQ(batch.size(), 4);
  EXPECT_EQ(batch.labels[0], ds.label_of(10));
  EXPECT_EQ(batch.labels[3], ds.label_of(13));
}

TEST(SynthCv, ConfigValidation) {
  SynthCvDataset::Config c;
  c.num_classes = 1;
  EXPECT_THROW(SynthCvDataset{c}, std::invalid_argument);
  c = {};
  c.image_size = 2;
  EXPECT_THROW(SynthCvDataset{c}, std::invalid_argument);
}

TEST(SampleIndices, DistinctAndInRange) {
  clado::tensor::Rng rng(1);
  const auto idx = sample_indices(100, 50, rng);
  EXPECT_EQ(idx.size(), 50U);
  std::set<std::int64_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 50U);
  for (std::int64_t i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 100);
  }
}

TEST(SampleIndices, CountExceedingUniverseThrows) {
  clado::tensor::Rng rng(2);
  EXPECT_THROW(sample_indices(10, 11, rng), std::invalid_argument);
}

TEST(SensitivitySets, ReproducibleAndIndependent) {
  const auto sets_a = make_sensitivity_sets(1000, 32, 4, 99);
  const auto sets_b = make_sensitivity_sets(1000, 32, 4, 99);
  ASSERT_EQ(sets_a.size(), 4U);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(sets_a[s], sets_b[s]);
    EXPECT_EQ(sets_a[s].size(), 32U);
  }
  // Different sets are (almost surely) different.
  EXPECT_NE(sets_a[0], sets_a[1]);
  // Different master seeds give different sets.
  const auto sets_c = make_sensitivity_sets(1000, 32, 4, 100);
  EXPECT_NE(sets_a[0], sets_c[0]);
}

}  // namespace
}  // namespace clado::data
