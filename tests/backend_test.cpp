// clado::backend coverage: precision selection and layer preparation, the
// latency-table artifact, the solver's secondary-cost (milliseconds) column,
// and — the acceptance bar for the subsystem — serve::Engine executing a
// mixed 4/8-bit assignment through real integer kernels: per-layer backend
// tags in the plan dump, bit-identity with the reference integer path
// (qlinear / qconv2d) on statically quantized inputs, and logits parity
// with the fake-quant simulation within a documented tolerance.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "clado/backend/backend.h"
#include "clado/backend/latency.h"
#include "clado/core/algorithms.h"
#include "clado/data/synthcv.h"
#include "clado/models/builders.h"
#include "clado/models/model.h"
#include "clado/nn/layers.h"
#include "clado/quant/act_quant.h"
#include "clado/quant/int4.h"
#include "clado/quant/int8.h"
#include "clado/quant/qat.h"
#include "clado/serve/engine.h"
#include "clado/serve/plan.h"
#include "clado/solver/iqp.h"
#include "clado/tensor/rng.h"
#include "clado/tensor/tensor.h"
#include "test_models_util.h"

namespace {

namespace backend = clado::backend;
using backend::Precision;
using clado::models::Model;
using clado::serve::BackendMode;
using clado::serve::Engine;
using clado::serve::EngineSpec;
using clado::serve::Fusion;
using clado::tensor::Rng;
using clado::tensor::Tensor;

// ---- precision selection ----------------------------------------------------

TEST(Precision, BitsMapOntoBackends) {
  EXPECT_EQ(backend::precision_for_bits(0), Precision::kFp32);
  EXPECT_EQ(backend::precision_for_bits(-1), Precision::kFp32);
  EXPECT_EQ(backend::precision_for_bits(9), Precision::kFp32);
  EXPECT_EQ(backend::precision_for_bits(32), Precision::kFp32);
  for (int b = 1; b <= 4; ++b) EXPECT_EQ(backend::precision_for_bits(b), Precision::kInt4) << b;
  for (int b = 5; b <= 8; ++b) EXPECT_EQ(backend::precision_for_bits(b), Precision::kInt8) << b;
}

TEST(Precision, NamesAreStable) {
  EXPECT_STREQ(backend::precision_name(Precision::kFp32), "fp32");
  EXPECT_STREQ(backend::precision_name(Precision::kInt8), "int8");
  EXPECT_STREQ(backend::precision_name(Precision::kInt4), "int4");
}

// ---- prepare_layer ----------------------------------------------------------

clado::quant::WeightCodes make_codes(int bits, float scale, std::vector<std::int8_t> codes) {
  clado::quant::WeightCodes wc;
  wc.bits = bits;
  wc.scale = scale;
  wc.codes = std::move(codes);
  return wc;
}

TEST(PrepareLayer, Int8KeepsCodesVerbatim) {
  const auto wc = make_codes(8, 0.25F, {-128, -1, 0, 1, 127, 64});
  const backend::PreparedLayer prep = backend::prepare_layer(wc, 2, 3);
  EXPECT_EQ(prep.precision, Precision::kInt8);
  EXPECT_EQ(prep.n, 2);
  EXPECT_EQ(prep.k, 3);
  EXPECT_EQ(prep.w_scale, 0.25F);
  ASSERT_EQ(prep.w_s8.size(), 6u);
  EXPECT_TRUE(prep.w_s4.empty());
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(prep.w_s8[i], wc.codes[i]);
}

TEST(PrepareLayer, Int4PacksRowsAndRoundTrips) {
  // Odd k so the per-row pad nibble is exercised.
  const auto wc = make_codes(4, 0.5F, {-8, 7, 0, 3, -1, 5});
  const backend::PreparedLayer prep = backend::prepare_layer(wc, 2, 3);
  EXPECT_EQ(prep.precision, Precision::kInt4);
  EXPECT_TRUE(prep.w_s8.empty());
  ASSERT_EQ(static_cast<std::int64_t>(prep.w_s4.size()),
            2 * clado::quant::packed_s4_stride(3));
  for (std::int64_t r = 0; r < 2; ++r) {
    std::int8_t row[3];
    clado::quant::unpack_s4(prep.w_s4.data() + r * clado::quant::packed_s4_stride(3), 3, row);
    for (std::int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(row[j], wc.codes[static_cast<std::size_t>(r * 3 + j)]);
    }
  }
}

TEST(PrepareLayer, BitsZeroStaysFp32AndSizeMismatchThrows) {
  clado::quant::WeightCodes fp;
  fp.bits = 0;
  const backend::PreparedLayer prep = backend::prepare_layer(fp, 4, 9);
  EXPECT_EQ(prep.precision, Precision::kFp32);
  EXPECT_TRUE(prep.w_s8.empty());
  EXPECT_TRUE(prep.w_s4.empty());

  const auto wc = make_codes(8, 1.0F, {1, 2, 3});
  EXPECT_THROW(backend::prepare_layer(wc, 2, 2), std::invalid_argument);
}

TEST(Backends, Int8GemmMatchesQuantReferenceAndFp32Throws) {
  Rng rng(5);
  const std::int64_t rows = 3, n = 4, k = 17;
  std::vector<std::int8_t> codes(static_cast<std::size_t>(n * k));
  std::vector<std::int8_t> in(static_cast<std::size_t>(rows * k));
  for (auto& c : codes) c = static_cast<std::int8_t>(static_cast<int>(rng.uniform_int(256)) - 128);
  for (auto& c : in) c = static_cast<std::int8_t>(static_cast<int>(rng.uniform_int(256)) - 128);
  backend::PreparedLayer prep =
      backend::prepare_layer(make_codes(8, 1.0F, codes), n, k);

  std::vector<std::int32_t> got(static_cast<std::size_t>(rows * n));
  std::vector<std::int32_t> want(static_cast<std::size_t>(rows * n));
  const backend::Backend& b8 = backend::backend_for(Precision::kInt8);
  EXPECT_EQ(b8.precision(), Precision::kInt8);
  b8.gemm(prep, rows, in.data(), /*za=*/-3, got.data());
  clado::quant::gemm_s8s8_s32(rows, n, k, in.data(), -3, codes.data(), 0, want.data());
  for (std::size_t i = 0; i < want.size(); ++i) ASSERT_EQ(got[i], want[i]) << i;

  const backend::Backend& bf = backend::backend_for(Precision::kFp32);
  EXPECT_THROW(bf.gemm(prep, rows, in.data(), 0, got.data()), std::logic_error);
}

// ---- latency table ----------------------------------------------------------

TEST(LatencyTable, SaveLoadRoundTripAndValidation) {
  backend::LatencyTable table;
  table.ms = {{4.0, 1.5, 0.75}, {8.0, 3.25, 1.125}};
  const std::string path = ::testing::TempDir() + "clado_latency_rt.bin";
  backend::save_latency_table(table, path);
  const backend::LatencyTable back = backend::load_latency_table(path);
  ASSERT_EQ(back.layers(), 2u);
  for (std::size_t g = 0; g < 2; ++g) {
    for (int p = 0; p < backend::kNumPrecisions; ++p) {
      EXPECT_EQ(back.ms[g][static_cast<std::size_t>(p)], table.ms[g][static_cast<std::size_t>(p)]);
    }
  }
  EXPECT_EQ(back.at(1, Precision::kInt4), 1.125);
  EXPECT_THROW(backend::load_latency_table(path + ".does-not-exist"), std::runtime_error);
}

TEST(LatencyTable, CostsIndexColumnsByExecutionPrecision) {
  backend::LatencyTable table;
  table.ms = {{4.0, 1.5, 0.75}, {8.0, 3.25, 1.125}};
  const std::vector<int> bits = {2, 4, 8};
  const auto costs = backend::latency_costs(table, 2, bits);
  ASSERT_EQ(costs.size(), 2u);
  // 2- and 4-bit candidates run on the same int4 backend, so they share a
  // column; 8-bit takes the int8 column.
  EXPECT_EQ(costs[0], (std::vector<double>{0.75, 0.75, 1.5}));
  EXPECT_EQ(costs[1], (std::vector<double>{1.125, 1.125, 3.25}));
  EXPECT_THROW(backend::latency_costs(table, 3, bits), std::invalid_argument);
}

// ---- solver: milliseconds as the knapsack column ----------------------------

TEST(SolverSecondaryCost, BudgetConstrainsTheSwappedColumn) {
  // Objective alone prefers choice 1 in both groups; the secondary
  // (latency) budget only admits (0, 0).
  clado::solver::QuadraticProblem problem;
  problem.G = Tensor({4, 4});
  const double diag[4] = {5.0, 1.0, 5.0, 1.0};
  for (std::int64_t i = 0; i < 4; ++i) problem.G[i * 4 + i] = static_cast<float>(diag[i]);
  problem.cost = {{4.0, 8.0}, {4.0, 8.0}};
  problem.budget = 16.0;  // bytes: everything feasible

  const std::vector<std::vector<double>> latency = {{1.0, 3.0}, {2.0, 5.0}};
  const auto res = clado::solver::solve_with_fallback(problem, latency, 4.0);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.choice, (std::vector<int>{0, 0}));

  // Unconstrained control: the bytes budget admits the better objective.
  const auto wide = clado::solver::solve_with_fallback(problem, latency, 100.0);
  ASSERT_TRUE(wide.feasible);
  EXPECT_EQ(wide.choice, (std::vector<int>{1, 1}));

  EXPECT_THROW(clado::solver::solve_with_fallback(problem, {{1.0, 3.0}}, 4.0),
               std::invalid_argument);
  EXPECT_THROW(clado::solver::solve_with_fallback(problem, {{1.0}, {2.0, 5.0}}, 4.0),
               std::invalid_argument);
}

TEST(AssignUnderLatency, PipelineSolvesAgainstMeasuredMilliseconds) {
  Rng rng(29);
  Model model = clado::testing::make_tiny_model(rng);
  Rng data_rng(31);
  clado::core::MpqPipeline pipeline(model, clado::testing::make_noise_batch(data_rng));

  // 4 layers × candidates {2, 8}: the 8-bit choice is 3× slower everywhere.
  const std::vector<std::vector<double>> latency(4, {1.0, 3.0});
  const auto a =
      pipeline.assign_under_latency(clado::core::Algorithm::kClado, latency, /*budget_ms=*/8.0);
  ASSERT_EQ(a.bits.size(), 4u);
  EXPECT_LE(a.latency_ms, 8.0 + 1e-9);
  EXPECT_GT(a.latency_ms, 0.0);
  EXPECT_EQ(a.budget_ms, 8.0);
  EXPECT_EQ(a.target_bytes, 0.0);  // latency-budgeted, not size-budgeted
  EXPECT_GT(a.bytes, 0.0);         // realized size still reported
  double realized = 0.0;
  for (std::size_t g = 0; g < 4; ++g) {
    realized += latency[g][static_cast<std::size_t>(a.choice[g])];
  }
  EXPECT_DOUBLE_EQ(realized, a.latency_ms);

  EXPECT_THROW(pipeline.assign_under_latency(clado::core::Algorithm::kClado,
                                             {{1.0, 3.0}}, 8.0),
               std::invalid_argument);
  EXPECT_THROW(pipeline.assign_under_latency(clado::core::Algorithm::kClado,
                                             std::vector<std::vector<double>>(4, {1.0}), 8.0),
               std::invalid_argument);
}

// ---- engine: mode resolution and error paths --------------------------------

Model make_calibrated_resnet_a() {
  Rng rng(202);
  Model model = clado::models::build_by_name("resnet_a", rng, /*num_classes=*/10);
  clado::data::Batch calib;
  Rng data_rng(303);
  calib.images = Tensor::randn({4, model.channels, model.image_size, model.image_size}, data_rng);
  for (std::int64_t i = 0; i < 4; ++i) calib.labels.push_back(i % model.num_classes);
  model.calibrate_activations(calib);
  return model;
}

/// Alternating 4/8-bit assignment — non-uniform, both integer backends live.
std::vector<int> mixed_bits(std::size_t layers) {
  std::vector<int> bits(layers);
  for (std::size_t i = 0; i < layers; ++i) bits[i] = (i % 2 == 0) ? 4 : 8;
  return bits;
}

EngineSpec backend_spec(std::vector<int> bits, std::int64_t max_batch) {
  EngineSpec spec;
  spec.bits = std::move(bits);
  spec.label = "backend";
  spec.max_batch = max_batch;
  spec.fusion = Fusion::kOn;
  spec.backend = BackendMode::kOn;
  return spec;
}

TEST(BackendEngine, RequiresFusion) {
  Model model = make_calibrated_resnet_a();
  EngineSpec spec = backend_spec(mixed_bits(model.quant_layers.size()), 4);
  spec.fusion = Fusion::kOff;
  EXPECT_THROW(Engine(std::move(model), std::move(spec)), std::invalid_argument);
}

TEST(BackendEngine, EnvVarParsesStrictlyAndDefaultsOff) {
  Rng rng(43);
  Model model = clado::testing::make_tiny_model(rng);
  ::unsetenv("CLADO_BACKEND");
  {
    EngineSpec spec;
    spec.bits = std::vector<int>(model.quant_layers.size(), 8);
    spec.fusion = Fusion::kOn;
    Engine engine(model.clone(), std::move(spec));
    EXPECT_FALSE(engine.backend_enabled());  // kAuto + unset = off
    EXPECT_TRUE(engine.prepared_layers().empty());
  }
  ::setenv("CLADO_BACKEND", "1", 1);
  {
    EngineSpec spec;
    spec.bits = std::vector<int>(model.quant_layers.size(), 8);
    spec.fusion = Fusion::kOn;
    Engine engine(model.clone(), std::move(spec));
    EXPECT_TRUE(engine.backend_enabled());
  }
  {
    // Explicit kOff wins over the env var.
    EngineSpec spec;
    spec.bits = std::vector<int>(model.quant_layers.size(), 8);
    spec.fusion = Fusion::kOn;
    spec.backend = BackendMode::kOff;
    Engine engine(model.clone(), std::move(spec));
    EXPECT_FALSE(engine.backend_enabled());
  }
  ::setenv("CLADO_BACKEND", "yes", 1);
  {
    EngineSpec spec;
    spec.bits = std::vector<int>(model.quant_layers.size(), 8);
    spec.fusion = Fusion::kOn;
    EXPECT_THROW(Engine(model.clone(), std::move(spec)), std::invalid_argument);
  }
  ::unsetenv("CLADO_BACKEND");
}

// ---- engine: mixed-precision execution (the acceptance check) ---------------

TEST(BackendEngine, MixedAssignmentRunsEveryQuantLayerOnItsBackend) {
  Model model = make_calibrated_resnet_a();
  const std::size_t layers = model.quant_layers.size();
  const std::vector<int> bits = mixed_bits(layers);
  Engine engine(std::move(model), backend_spec(bits, 4));

  ASSERT_TRUE(engine.backend_enabled());
  ASSERT_TRUE(engine.fused());
  const auto& prepared = engine.prepared_layers();
  ASSERT_EQ(prepared.size(), layers);
  for (std::size_t i = 0; i < layers; ++i) {
    EXPECT_EQ(prepared[i].precision, backend::precision_for_bits(bits[i])) << "layer " << i;
    if (prepared[i].precision == Precision::kInt4) {
      EXPECT_FALSE(prepared[i].w_s4.empty());
      EXPECT_TRUE(prepared[i].w_s8.empty());
    } else {
      EXPECT_FALSE(prepared[i].w_s8.empty());
      EXPECT_TRUE(prepared[i].w_s4.empty());
    }
  }

  // resnet_a compiles fully (no fallbacks, no grouped convs), so every
  // quantized layer must execute through its assigned-precision backend.
  const clado::serve::CompiledPlan* plan = engine.plan(0);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->fallback_steps(), 0u);
  EXPECT_EQ(plan->backend_steps(), layers);

  // Per-layer backend tags in the plan dump: both integer precisions are
  // live, and both static (post-fake-quant) and dynamic input
  // quantization paths appear (the stem sees the raw image).
  const std::string dump = plan->dump();
  EXPECT_NE(dump.find("backend=int4"), std::string::npos) << dump;
  EXPECT_NE(dump.find("backend=int8"), std::string::npos) << dump;
  EXPECT_NE(dump.find("in=dynamic"), std::string::npos) << dump;
  EXPECT_EQ(dump.find("backend=fp32"), std::string::npos) << dump;

  // And it actually infers.
  Rng rng(601);
  const auto& s = engine.sample_shape();
  const Tensor batch = Tensor::randn({3, s[0], s[1], s[2]}, rng);
  const Tensor logits = engine.infer(batch);
  ASSERT_EQ(logits.shape(), (clado::tensor::Shape{3, 10}));
  for (std::int64_t i = 0; i < logits.numel(); ++i) ASSERT_TRUE(std::isfinite(logits[i]));
}

TEST(BackendEngine, LogitsTrackFakeQuantSimulationWithinTolerance) {
  // The backend quantizes layer inputs to int8 (losslessly where a fake
  // quant step precedes the layer, dynamically elsewhere), so its logits
  // are the fake-quant simulation's plus bounded activation-quantization
  // noise from the non-fake-quantized seams (the raw-image stem, the relu
  // between a block's convs). Empirically the divergence on resnet_a at
  // mixed 4/8 is ~0.21 on O(1) logits; 0.35 gives slack across hosts
  // without masking real bugs (a wrong backend, scale, or zero point
  // shifts logits by whole units).
  Model model = make_calibrated_resnet_a();
  Model twin = model.clone();
  const std::vector<int> bits = mixed_bits(model.quant_layers.size());

  Engine integer(std::move(model), backend_spec(bits, 4));
  EngineSpec fake_spec;
  fake_spec.bits = bits;
  fake_spec.label = "fake-quant";
  fake_spec.max_batch = 4;
  fake_spec.fusion = Fusion::kOn;
  fake_spec.backend = BackendMode::kOff;
  Engine fake(std::move(twin), std::move(fake_spec));

  Rng rng(607);
  const auto& s = integer.sample_shape();
  const Tensor batch = Tensor::randn({4, s[0], s[1], s[2]}, rng);
  const Tensor a = integer.infer(batch);
  const Tensor b = fake.infer(batch);
  ASSERT_EQ(a.shape(), b.shape());
  float max_diff = 0.0F;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  EXPECT_LT(max_diff, 0.35F) << "backend vs fake-quant logit divergence";
}

TEST(BackendEngine, ChunksOversizedBatchesThroughThePlan) {
  // Backend engines never fall back to fake-quant for big batches; they
  // chunk. Chunk boundaries are the only numeric seam (dynamic input
  // quantization is per chunk), so infer(6) must equal the concatenation
  // of infer on the same {2, 2, 2} partition.
  Model model = make_calibrated_resnet_a();
  std::vector<int> bits = mixed_bits(model.quant_layers.size());
  Engine engine(std::move(model), backend_spec(std::move(bits), 2));

  Rng rng(613);
  const auto& s = engine.sample_shape();
  const std::int64_t per = s[0] * s[1] * s[2];
  const Tensor batch = Tensor::randn({6, s[0], s[1], s[2]}, rng);
  const Tensor whole = engine.infer(batch);
  ASSERT_EQ(whole.shape(), (clado::tensor::Shape{6, 10}));

  for (std::int64_t chunk = 0; chunk < 3; ++chunk) {
    Tensor part({2, s[0], s[1], s[2]});
    std::memcpy(part.data(), batch.data() + chunk * 2 * per,
                sizeof(float) * static_cast<std::size_t>(2 * per));
    const Tensor logits = engine.infer(part);
    for (std::int64_t r = 0; r < 2; ++r) {
      for (std::int64_t c = 0; c < 10; ++c) {
        ASSERT_EQ(whole[(chunk * 2 + r) * 10 + c], logits[r * 10 + c])
            << "chunk " << chunk << " row " << r << " logit " << c;
      }
    }
  }
}

// ---- engine: bit-identity with the reference integer path -------------------

/// Flatten -> 8-bit fake quant -> Linear: the linear's input buffer is
/// defined by a fake-quant step, so the backend quantizes it statically and
/// the whole computation is an exact replay of quant::qlinear.
Model make_fq_linear_model(Rng& rng) {
  using namespace clado::nn;
  Model m;
  m.name = "fq_linear";
  m.net = std::make_unique<Sequential>();
  m.candidate_bits = {4, 8};
  m.scheme = clado::quant::WeightScheme::kPerTensorSymmetric;
  m.num_classes = 5;
  m.image_size = 8;
  m.net->emplace_named<Flatten>("flatten");
  auto* aq = m.net->emplace_named<clado::quant::ActFakeQuant>("aq_in", 8);
  m.act_quants.push_back(aq);
  m.net->emplace_named<Linear>("fc", 3 * 8 * 8, 5)->init(rng);
  m.finalize();
  return m;
}

/// 8-bit fake quant -> 3x3 conv on a 3x3 image (pad 0): the conv output is
/// spatially 1x1, so GlobalAvgPool is the identity and engine logits are
/// exactly the conv's integer output.
Model make_fq_conv_model(Rng& rng) {
  using namespace clado::nn;
  Model m;
  m.name = "fq_conv";
  m.net = std::make_unique<Sequential>();
  m.candidate_bits = {4, 8};
  m.scheme = clado::quant::WeightScheme::kPerTensorSymmetric;
  m.num_classes = 5;
  m.image_size = 3;
  auto* aq = m.net->emplace_named<clado::quant::ActFakeQuant>("aq_in", 8);
  m.act_quants.push_back(aq);
  m.net->emplace_named<Conv2d>("conv", 3, 5, 3, /*stride=*/1, /*pad=*/0)->init(rng);
  m.net->emplace_named<GlobalAvgPool>("gap");
  m.finalize();
  return m;
}

void calibrate(Model& model, std::uint64_t seed, std::int64_t n = 8) {
  clado::data::Batch calib;
  Rng rng(seed);
  calib.images = Tensor::randn({n, model.channels, model.image_size, model.image_size}, rng);
  for (std::int64_t i = 0; i < n; ++i) calib.labels.push_back(i % model.num_classes);
  model.calibrate_activations(calib);
}

/// Static input-quantization parameters of a frozen 8-bit ActFakeQuant:
/// same grid shifted from u8 onto s8 (the backend's step.in_zp).
clado::quant::QParams static_qparams(const clado::quant::ActFakeQuant& aq) {
  clado::quant::QParams p;
  p.scale = aq.scale();
  p.zero_point = static_cast<std::int32_t>(std::nearbyint(aq.zero_point())) - 128;
  return p;
}

TEST(BackendEngine, UniformInt8LinearIsBitIdenticalToQlinear) {
  Rng rng(71);
  Model model = make_fq_linear_model(rng);
  calibrate(model, 73);
  Model twin = model.clone();
  Engine engine(std::move(model), backend_spec({8}, 4));
  ASSERT_EQ(engine.plan(0)->backend_steps(), 1u);
  const std::string dump = engine.plan(0)->dump();
  EXPECT_NE(dump.find("backend=int8"), std::string::npos) << dump;
  EXPECT_NE(dump.find("in=static"), std::string::npos) << dump;

  Rng data_rng(79);
  const Tensor batch = Tensor::randn({3, 3, 8, 8}, data_rng);
  const Tensor got = engine.infer(batch);

  // Reference: fake-quant the flattened input, quantize it on the same
  // grid, and run the existing integer linear.
  twin.net->set_training(false);
  auto* aq = twin.act_quants.at(0);
  const Tensor flat = batch.reshape({3, 192});
  const Tensor fq_out = aq->forward(flat);
  const clado::quant::QTensor qx = clado::quant::quantize_int8(fq_out, static_qparams(*aq));

  const auto& prep = engine.prepared_layers().at(0);
  ASSERT_EQ(prep.precision, Precision::kInt8);
  clado::quant::QTensor qw;
  qw.shape = {5, 192};
  qw.data = prep.w_s8;
  qw.scale = prep.w_scale;
  qw.zero_point = 0;
  auto* fc = dynamic_cast<clado::nn::Linear*>(twin.quant_layers.at(0).layer);
  ASSERT_NE(fc, nullptr);
  const Tensor want = clado::quant::qlinear(qx, qw, fc->bias_data());

  ASSERT_EQ(got.shape(), want.shape());
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "logit " << i;
  }
}

TEST(BackendEngine, UniformInt8ConvIsBitIdenticalToQconv2d) {
  Rng rng(83);
  Model model = make_fq_conv_model(rng);
  calibrate(model, 89);
  Model twin = model.clone();
  Engine engine(std::move(model), backend_spec({8}, 4));
  ASSERT_EQ(engine.plan(0)->backend_steps(), 1u);

  Rng data_rng(97);
  const Tensor batch = Tensor::randn({4, 3, 3, 3}, data_rng);
  const Tensor got = engine.infer(batch);

  twin.net->set_training(false);
  auto* aq = twin.act_quants.at(0);
  const Tensor fq_out = aq->forward(batch);
  const clado::quant::QTensor qx = clado::quant::quantize_int8(fq_out, static_qparams(*aq));

  const auto& prep = engine.prepared_layers().at(0);
  ASSERT_EQ(prep.precision, Precision::kInt8);
  clado::quant::QTensor qw;
  qw.shape = {5, 3, 3, 3};
  qw.data = prep.w_s8;
  qw.scale = prep.w_scale;
  qw.zero_point = 0;
  auto* conv = dynamic_cast<clado::nn::Conv2d*>(twin.quant_layers.at(0).layer);
  ASSERT_NE(conv, nullptr);
  const Tensor want =
      clado::quant::qconv2d(qx, qw, conv->bias_data(), 1, 0).reshape({4, 5});

  ASSERT_EQ(got.shape(), want.shape());
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "logit " << i;
  }
}

TEST(BackendEngine, Int4ConvIsBitIdenticalToThePackedKernelPath) {
  Rng rng(101);
  Model model = make_fq_conv_model(rng);
  calibrate(model, 103);
  Model twin = model.clone();
  Engine engine(std::move(model), backend_spec({4}, 4));
  ASSERT_EQ(engine.plan(0)->backend_steps(), 1u);
  EXPECT_NE(engine.plan(0)->dump().find("backend=int4"), std::string::npos);

  Rng data_rng(107);
  const Tensor batch = Tensor::randn({4, 3, 3, 3}, data_rng);
  const Tensor got = engine.infer(batch);

  twin.net->set_training(false);
  auto* aq = twin.act_quants.at(0);
  const Tensor fq_out = aq->forward(batch);
  const clado::quant::QParams qp = static_qparams(*aq);
  const clado::quant::QTensor qx = clado::quant::quantize_int8(fq_out, qp);

  const auto& prep = engine.prepared_layers().at(0);
  ASSERT_EQ(prep.precision, Precision::kInt4);
  auto* conv = dynamic_cast<clado::nn::Conv2d*>(twin.quant_layers.at(0).layer);
  ASSERT_NE(conv, nullptr);

  // Replay the backend's conv by hand: per-sample im2col at the static zero
  // point, the packed s4 GEMM, and the shared requant epilogue.
  const std::int64_t patch = 3 * 3 * 3;  // C * k * k; one output position
  Tensor want({4, 5});
  std::vector<std::int8_t> cols(static_cast<std::size_t>(patch));
  std::vector<std::int32_t> acc(5);
  for (std::int64_t sample = 0; sample < 4; ++sample) {
    clado::quant::im2col_s8(qx.data.data() + sample * patch, 3, 3, 3, /*kernel=*/3,
                            /*stride=*/1, /*pad=*/0, /*oh=*/1, /*ow=*/1, qp.zero_point,
                            cols.data());
    clado::quant::gemm_s8s4_s32(1, 5, patch, cols.data(), qp.zero_point, prep.w_s4.data(), 0,
                                acc.data());
    clado::quant::requant_scatter(acc.data(), /*positions=*/1, /*out_c=*/5,
                                  qp.scale * prep.w_scale, conv->bias_data(),
                                  want.data() + sample * 5);
  }

  ASSERT_EQ(got.shape(), want.shape());
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "logit " << i;
  }
}

}  // namespace
