// Fleet-serving coverage: named-engine registry with replica sets,
// least-loaded dispatch, mid-stream hot-swap bit-identity, swap fault
// atomicity, stale-socket reclaim vs live-daemon conflict, and the TCP
// listener. Runs under TSan in CI alongside serve_test: the daemon,
// streamer, and swap paths here race on purpose.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "clado/fault/fault.h"
#include "clado/obs/obs.h"
#include "clado/serve/engine.h"
#include "clado/serve/fleet.h"
#include "clado/serve/serve.h"
#include "clado/serve/socket.h"
#include "clado/serve/wire.h"
#include "clado/tensor/rng.h"
#include "test_models_util.h"

namespace {

using clado::serve::DaemonOptions;
using clado::serve::Engine;
using clado::serve::EngineSpec;
using clado::serve::Fleet;
using clado::serve::Server;
using clado::serve::ServerConfig;
using clado::serve::SocketDaemon;
using clado::serve::Status;
using clado::tensor::Rng;
using clado::tensor::Tensor;

// All engines in this file freeze the same seed-7 tiny model, so two
// engines with equal bits are bit-identical — the property the hot-swap
// tests lean on.
std::shared_ptr<Engine> tiny_engine(std::vector<int> bits, int replicas = 1) {
  Rng rng(7);
  auto model = clado::testing::make_tiny_model(rng);
  EngineSpec spec;
  spec.bits = std::move(bits);
  spec.replicas = replicas;
  spec.label = spec.bits.empty() ? "fp32" : "int";
  return std::make_shared<Engine>(std::move(model), std::move(spec));
}

ServerConfig daemon_config() {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.max_delay_us = 200;
  return cfg;
}

std::vector<std::shared_ptr<Server>> replica_set(const std::vector<int>& bits, int servers,
                                                 ServerConfig cfg = daemon_config()) {
  std::vector<std::shared_ptr<Server>> set;
  for (int i = 0; i < servers; ++i) {
    set.push_back(std::make_shared<Server>(tiny_engine(bits, cfg.workers), cfg));
  }
  return set;
}

Tensor fixed_sample() {
  Rng rng(91);
  return Tensor::randn({3, 8, 8}, rng);
}

Tensor reference_logits(const std::vector<int>& bits, const Tensor& sample) {
  Tensor one = sample;
  one.reshape_inplace({1, 3, 8, 8});
  return tiny_engine(bits)->infer(one);
}

std::string temp_socket(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

bool logits_equal(const std::vector<float>& got, const Tensor& want) {
  if (static_cast<std::int64_t>(got.size()) != want.numel()) return false;
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    if (got[static_cast<std::size_t>(i)] != want[i]) return false;
  }
  return true;
}

TEST(Fleet, PutRouteResolveErase) {
  Fleet fleet;
  EXPECT_THROW(fleet.put("", replica_set({}, 1)), std::invalid_argument);
  EXPECT_THROW(fleet.put("a", {}), std::invalid_argument);
  EXPECT_THROW(fleet.put("a", {nullptr}), std::invalid_argument);
  EXPECT_EQ(fleet.route("a"), nullptr);

  fleet.put("a", replica_set({8, 8, 8, 8}, 2));
  EXPECT_EQ(fleet.size(), 1u);
  EXPECT_EQ(fleet.replica_count("a"), 2u);
  EXPECT_NE(fleet.route("a"), nullptr);
  // Sole model: the empty routing key resolves to it.
  EXPECT_EQ(fleet.resolve_name("").value_or("?"), "a");
  EXPECT_NE(fleet.route(""), nullptr);

  fleet.put("b", replica_set({}, 1));
  EXPECT_EQ(fleet.size(), 2u);
  // Two models: the empty key is ambiguous, unknown names stay unknown.
  EXPECT_FALSE(fleet.resolve_name("").has_value());
  EXPECT_EQ(fleet.route(""), nullptr);
  EXPECT_EQ(fleet.route("nope"), nullptr);

  const std::string stats = fleet.stats_text();
  EXPECT_NE(stats.find("a: engine="), std::string::npos) << stats;
  EXPECT_NE(stats.find("replicas=2"), std::string::npos) << stats;

  EXPECT_TRUE(fleet.erase("b"));
  EXPECT_FALSE(fleet.erase("b"));
  EXPECT_EQ(fleet.names(), std::vector<std::string>{"a"});
  fleet.drain_all();
}

TEST(Fleet, RoutesToLeastLoadedReplica) {
  ServerConfig cfg = daemon_config();
  cfg.start_paused = true;  // queued work stays queued: depths are inspectable
  Fleet fleet;
  auto replicas = replica_set({}, 2, cfg);
  fleet.put("tiny", replicas);

  // Load replica 0 directly; the fleet must now prefer replica 1.
  Rng rng(5);
  std::vector<std::future<clado::serve::Response>> backlog;
  backlog.push_back(replicas[0]->submit(Tensor::randn({3, 8, 8}, rng)));
  backlog.push_back(replicas[0]->submit(Tensor::randn({3, 8, 8}, rng)));
  EXPECT_EQ(replicas[0]->queue_depth(), 2);
  EXPECT_EQ(fleet.route("tiny"), replicas[1]);

  // Tip the balance the other way.
  for (int i = 0; i < 3; ++i) {
    backlog.push_back(replicas[1]->submit(Tensor::randn({3, 8, 8}, rng)));
  }
  EXPECT_EQ(fleet.route("tiny"), replicas[0]);

  for (auto& r : replicas) r->resume();
  fleet.drain_all();
  for (auto& f : backlog) EXPECT_EQ(f.get().status, Status::kOk);
}

TEST(Fleet, HotSwapServesBitIdenticalToFreshLoadMidStream) {
  const std::vector<int> old_bits{8, 8, 8, 8};
  const std::vector<int> new_bits{2, 8, 2, 8};
  const Tensor sample = fixed_sample();
  const Tensor ref_old = reference_logits(old_bits, sample);
  const Tensor ref_new = reference_logits(new_bits, sample);
  // The two assignments must actually disagree on this sample, or the
  // bit-identity assertion below would be vacuous.
  ASSERT_FALSE([&] {
    for (std::int64_t i = 0; i < ref_old.numel(); ++i) {
      if (ref_old[i] != ref_new[i]) return false;
    }
    return true;
  }());

  Fleet fleet;
  fleet.put("tiny", replica_set(old_bits, 2));
  DaemonOptions dopts;
  dopts.socket_path = temp_socket("clado_fleet_swap.sock");
  SocketDaemon daemon(fleet, dopts);
  daemon.set_swap_factory([](const std::string& name, const std::vector<int>& bits) {
    if (name != "tiny") throw std::runtime_error("no master weights for " + name);
    return replica_set(bits, 2);
  });
  std::thread daemon_thread([&] { daemon.run(); });

  // Stream queries across the swap: every answer must be a definite kOk
  // matching EITHER generation exactly — never a blend, error, or hang.
  std::atomic<bool> stop{false};
  std::atomic<int> bad_status{0};
  std::atomic<int> alien_logits{0};
  std::atomic<int> streamed{0};
  std::thread streamer([&] {
    while (!stop.load()) {
      const auto resp = clado::serve::query_socket(dopts.socket_path, sample);
      if (resp.status != Status::kOk) {
        bad_status.fetch_add(1);
        continue;
      }
      streamed.fetch_add(1);
      if (!logits_equal(resp.logits, ref_old) && !logits_equal(resp.logits, ref_new)) {
        alien_logits.fetch_add(1);
      }
    }
  });

  while (streamed.load() < 3) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const auto swap_resp = clado::serve::swap_socket(dopts.socket_path, "tiny", new_bits);
  EXPECT_EQ(swap_resp.status, Status::kOk) << swap_resp.error;

  const int after_swap = streamed.load();
  while (streamed.load() < after_swap + 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  streamer.join();
  EXPECT_EQ(bad_status.load(), 0);
  EXPECT_EQ(alien_logits.load(), 0);

  // Post-swap, the daemon serves exactly what a fresh load of new_bits
  // serves — the acceptance bar for hot-swap correctness.
  const auto resp = clado::serve::query_socket(dopts.socket_path, sample);
  ASSERT_EQ(resp.status, Status::kOk) << resp.error;
  EXPECT_TRUE(logits_equal(resp.logits, ref_new));
  const std::string stats = clado::serve::stats_socket(dopts.socket_path);
  EXPECT_NE(stats.find("tiny:"), std::string::npos) << stats;

  EXPECT_TRUE(clado::serve::shutdown_socket(dopts.socket_path));
  daemon_thread.join();
}

TEST(Fleet, InjectedSwapFailureLeavesOldSetFullyInService) {
  clado::fault::disarm_all();
  const std::vector<int> old_bits{8, 8, 8, 8};
  const Tensor sample = fixed_sample();
  const Tensor ref_old = reference_logits(old_bits, sample);

  Fleet fleet;
  fleet.put("tiny", replica_set(old_bits, 1));
  DaemonOptions dopts;
  dopts.socket_path = temp_socket("clado_fleet_swapfault.sock");
  SocketDaemon daemon(fleet, dopts);
  daemon.set_swap_factory([](const std::string& name, const std::vector<int>& bits) {
    (void)name;
    return replica_set(bits, 1);
  });
  std::thread daemon_thread([&] { daemon.run(); });

  clado::fault::arm_one_shot(clado::fault::Site::kRegistrySwap, 1);
  const auto failed = clado::serve::swap_socket(dopts.socket_path, "tiny", {2, 2, 2, 2});
  EXPECT_EQ(failed.status, Status::kEngineError);
  EXPECT_NE(failed.error.find("fault:registry_swap"), std::string::npos) << failed.error;
  clado::fault::disarm_all();

  // Strong exception safety: the failed swap changed nothing.
  EXPECT_EQ(fleet.replica_count("tiny"), 1u);
  const auto resp = clado::serve::query_socket(dopts.socket_path, sample);
  ASSERT_EQ(resp.status, Status::kOk) << resp.error;
  EXPECT_TRUE(logits_equal(resp.logits, ref_old));

  // And a retry with the fault gone succeeds.
  EXPECT_EQ(clado::serve::swap_socket(dopts.socket_path, "tiny", {2, 2, 2, 2}).status,
            Status::kOk);

  EXPECT_TRUE(clado::serve::shutdown_socket(dopts.socket_path));
  daemon_thread.join();
}

TEST(Fleet, MultiModelRoutingByNameOverOneDaemon) {
  Fleet fleet;
  fleet.put("quant", replica_set({8, 8, 8, 8}, 1));
  fleet.put("full", replica_set({}, 1));
  DaemonOptions dopts;
  dopts.socket_path = temp_socket("clado_fleet_multi.sock");
  SocketDaemon daemon(fleet, dopts);
  std::thread daemon_thread([&] { daemon.run(); });

  const Tensor sample = fixed_sample();
  const auto quant = clado::serve::query_socket(dopts.socket_path, sample, 0, "quant");
  ASSERT_EQ(quant.status, Status::kOk) << quant.error;
  EXPECT_TRUE(logits_equal(quant.logits, reference_logits({8, 8, 8, 8}, sample)));
  const auto full = clado::serve::query_socket(dopts.socket_path, sample, 0, "full");
  ASSERT_EQ(full.status, Status::kOk) << full.error;
  EXPECT_TRUE(logits_equal(full.logits, reference_logits({}, sample)));

  // Several models loaded: the empty key is ambiguous; unknown names are a
  // definite protocol answer, not a dropped connection.
  EXPECT_EQ(clado::serve::query_socket(dopts.socket_path, sample).status,
            Status::kUnknownModel);
  EXPECT_EQ(clado::serve::query_socket(dopts.socket_path, sample, 0, "nope").status,
            Status::kUnknownModel);

  EXPECT_TRUE(clado::serve::shutdown_socket(dopts.socket_path));
  daemon_thread.join();
}

TEST(Fleet, StaleSocketReclaimedAfterCrashLiveDaemonConflictRejected) {
  const std::string path = temp_socket("clado_fleet_stale.sock");
  std::filesystem::remove(path);

  // Simulate a daemon killed without cleanup: bind the path, then close the
  // fd. The socket FILE survives the "process" — exactly what a fresh
  // daemon trips over with a blind bind().
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
    ::close(fd);
  }
  ASSERT_TRUE(std::filesystem::exists(path));

  const std::int64_t reclaimed_before =
      clado::obs::counter("serve.stale_sockets_reclaimed").value();
  Fleet fleet;
  fleet.put("tiny", replica_set({}, 1));
  DaemonOptions dopts;
  dopts.socket_path = path;
  SocketDaemon daemon(fleet, dopts);  // restart must reclaim, not throw
  EXPECT_EQ(clado::obs::counter("serve.stale_sockets_reclaimed").value(),
            reclaimed_before + 1);
  std::thread daemon_thread([&] { daemon.run(); });
  ASSERT_TRUE(clado::serve::ping_socket(path));

  // A SECOND daemon on the same path must refuse: something live answers.
  Fleet other;
  other.put("tiny", replica_set({}, 1));
  DaemonOptions conflict;
  conflict.socket_path = path;
  try {
    SocketDaemon usurper(other, conflict);
    FAIL() << "daemon bound over a live daemon's socket";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("live daemon"), std::string::npos) << e.what();
  }
  // The conflict probe must not have clobbered the original daemon.
  EXPECT_TRUE(clado::serve::ping_socket(path));

  EXPECT_TRUE(clado::serve::shutdown_socket(path));
  daemon_thread.join();
}

TEST(Fleet, TcpAndUdsListenersAnswerIdentically) {
  Fleet fleet;
  fleet.put("tiny", replica_set({8, 8, 8, 8}, 1));
  DaemonOptions dopts;
  dopts.socket_path = temp_socket("clado_fleet_tcp.sock");
  dopts.tcp_port = 0;  // ephemeral: the kernel picks, tcp_port() reports
  SocketDaemon daemon(fleet, dopts);
  ASSERT_GT(daemon.tcp_port(), 0);
  const std::string tcp = "tcp:" + std::to_string(daemon.tcp_port());
  std::thread daemon_thread([&] { daemon.run(); });

  ASSERT_TRUE(clado::serve::ping_socket(tcp));
  ASSERT_TRUE(clado::serve::ping_socket(dopts.socket_path));

  const Tensor sample = fixed_sample();
  const auto over_tcp = clado::serve::query_socket(tcp, sample);
  const auto over_uds = clado::serve::query_socket("unix:" + dopts.socket_path, sample);
  ASSERT_EQ(over_tcp.status, Status::kOk) << over_tcp.error;
  ASSERT_EQ(over_uds.status, Status::kOk) << over_uds.error;
  EXPECT_EQ(over_tcp.logits, over_uds.logits);
  EXPECT_EQ(over_tcp.predicted, over_uds.predicted);

  // One persistent connection, several round trips (the loadgen path).
  clado::serve::ClientConnection conn(tcp);
  for (int i = 0; i < 3; ++i) {
    clado::serve::WireRequest req;
    req.type = clado::serve::MsgType::kInfer;
    req.input = sample;
    EXPECT_EQ(conn.roundtrip(req).status, Status::kOk);
  }

  EXPECT_NE(clado::serve::stats_socket(tcp).find("tiny:"), std::string::npos);
  // A shutdown over TCP drains the fleet exactly like one over UDS.
  EXPECT_TRUE(clado::serve::shutdown_socket(tcp));
  daemon_thread.join();
  EXPECT_FALSE(clado::serve::ping_socket(tcp));
}

TEST(Fleet, BadEndpointStringsThrow) {
  EXPECT_THROW(clado::serve::query_socket("tcp:notaport", fixed_sample()),
               std::runtime_error);
  EXPECT_THROW(clado::serve::query_socket("tcp:999999", fixed_sample()),
               std::runtime_error);
  EXPECT_THROW(clado::serve::query_socket("unix:", fixed_sample()), std::runtime_error);
}

}  // namespace
