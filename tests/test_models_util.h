// Shared tiny-model fixtures for core-pipeline tests: small enough for
// brute-force cross-checks, structured enough (residual block, multiple
// stages) to exercise prefix caching and block masks.
#pragma once

#include <memory>

#include "clado/data/synthcv.h"
#include "clado/models/model.h"
#include "clado/nn/blocks.h"
#include "clado/nn/layers.h"
#include "clado/nn/loss.h"
#include "clado/tensor/rng.h"

namespace clado::testing {

using clado::models::Model;
using clado::tensor::Rng;

/// 4 quantizable layers (stem conv, two block convs, fc), B = {2, 8}.
inline Model make_tiny_model(Rng& rng) {
  using namespace clado::nn;
  Model m;
  m.name = "tiny";
  m.net = std::make_unique<Sequential>();
  m.candidate_bits = {2, 8};
  m.scheme = clado::quant::WeightScheme::kPerTensorSymmetric;
  m.num_classes = 5;
  m.image_size = 8;

  {
    auto stem = std::make_unique<Sequential>();
    stem->emplace_named<Conv2d>("conv1", 3, 4, 3, 1, 1)->init(rng);
    stem->emplace_named<Activation>("act", Act::kRelu);
    m.net->push_back(std::move(stem), "stem");
  }
  {
    auto main = std::make_unique<Sequential>();
    main->emplace_named<Conv2d>("conv1", 4, 4, 3, 1, 1)->init(rng);
    main->emplace_named<Activation>("act", Act::kRelu);
    main->emplace_named<Conv2d>("conv2", 4, 4, 3, 1, 1)->init(rng);
    m.net->push_back(std::make_unique<ResidualBlock>(std::move(main), nullptr, true), "block");
  }
  m.net->emplace_named<GlobalAvgPool>("pool");
  m.net->emplace_named<Linear>("fc", 4, 5)->init(rng);
  m.finalize();
  return m;
}

/// Random-noise batch with cyclic labels (no real structure needed for
/// correctness tests).
inline clado::data::Batch make_noise_batch(Rng& rng, std::int64_t n = 16,
                                           std::int64_t classes = 5) {
  clado::data::Batch batch;
  batch.images = clado::nn::Tensor::randn({n, 3, 8, 8}, rng);
  for (std::int64_t i = 0; i < n; ++i) batch.labels.push_back(i % classes);
  return batch;
}

/// Mean CE loss via a plain full forward (no caching).
inline double full_loss(Model& m, const clado::data::Batch& batch) {
  clado::nn::CrossEntropyLoss criterion;
  m.net->set_training(false);
  return criterion.forward(m.net->forward(batch.images), batch.labels);
}

}  // namespace clado::testing
