#include "clado/tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "clado/tensor/check.h"
#include "clado/tensor/ops.h"

namespace clado::tensor {
namespace {

// CLADO_CHECK is compiled out in plain Release; the abort-on-violation
// contract is only testable when checks are live (Debug / sanitizer builds).
#if defined(CLADO_ENABLE_CHECKS) || !defined(NDEBUG)
TEST(TensorCheckDeathTest, AtOutOfBoundsAborts) {
  Tensor t({2, 2});
  EXPECT_DEATH((void)t.at({2, 0}), "CLADO_CHECK failed");
}

TEST(TensorCheckDeathTest, AtRankMismatchAborts) {
  Tensor t({2, 2});
  EXPECT_DEATH((void)t.at({0}), "CLADO_CHECK failed");
}
#endif

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.dim(), 3);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.shape_str(), "[2, 3, 4]");
  for (float v : t.flat()) EXPECT_EQ(v, 0.0F);
}

TEST(Tensor, FillConstructor) {
  Tensor t({3}, 2.5F);
  for (float v : t.flat()) EXPECT_EQ(v, 2.5F);
}

TEST(Tensor, ValueConstructorChecksSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, AtIndexing) {
  Tensor t({2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5});
  EXPECT_EQ((t.at({0, 0})), 0.0F);
  EXPECT_EQ((t.at({0, 2})), 2.0F);
  EXPECT_EQ((t.at({1, 1})), 4.0F);
  t.at({1, 2}) = 9.0F;
  EXPECT_EQ(t[5], 9.0F);
}

TEST(Tensor, ReshapeInfersWildcard) {
  Tensor t = Tensor::arange(12);
  const Tensor r = t.reshape({3, -1});
  EXPECT_EQ(r.shape(), (Shape{3, 4}));
  EXPECT_EQ(r[7], 7.0F);
  EXPECT_THROW(t.reshape({5, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshape({-1, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshape({3, 5}), std::invalid_argument);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{4, 5, 6});
  const Tensor sum = a + b;
  const Tensor diff = b - a;
  const Tensor prod = a * b;
  EXPECT_EQ(sum[1], 7.0F);
  EXPECT_EQ(diff[2], 3.0F);
  EXPECT_EQ(prod[0], 4.0F);
  const Tensor scaled = a * 2.0F;
  EXPECT_EQ(scaled[2], 6.0F);
  Tensor c({2}, std::vector<float>{1, 2});
  EXPECT_THROW(a += c, std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, std::vector<float>{1, -2, 3, 4});
  EXPECT_FLOAT_EQ(t.sum(), 6.0F);
  EXPECT_FLOAT_EQ(t.mean(), 1.5F);
  EXPECT_FLOAT_EQ(t.min(), -2.0F);
  EXPECT_FLOAT_EQ(t.max(), 4.0F);
  EXPECT_FLOAT_EQ(t.sq_norm(), 1 + 4 + 9 + 16);
  EXPECT_EQ(t.argmax(), 3);
}

TEST(Tensor, KahanSumIsAccurate) {
  // 1 + 1e-8 added many times loses precision with naive float accumulation.
  Tensor t({100001});
  t.fill(1e-4F);
  t[0] = 1.0F;
  EXPECT_NEAR(t.sum(), 1.0F + 1e-4F * 100000, 1e-4);
}

TEST(Tensor, RandnStatistics) {
  Rng rng(7);
  const Tensor t = Tensor::randn({10000}, rng, 2.0F);
  EXPECT_NEAR(t.mean(), 0.0, 0.1);
  const float var = t.sq_norm() / static_cast<float>(t.numel());
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Ops, MatmulMatchesHandComputation) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ((c.at({0, 0})), 58.0F);
  EXPECT_FLOAT_EQ((c.at({0, 1})), 64.0F);
  EXPECT_FLOAT_EQ((c.at({1, 0})), 139.0F);
  EXPECT_FLOAT_EQ((c.at({1, 1})), 154.0F);
}

TEST(Ops, MatmulRejectsBadShapes) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

// Reference GEMM to cross-check the blocked kernel across transposes.
void naive_gemm(bool ta, bool tb, std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                const float* a, const float* b, float beta, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * m + i] : a[i * k + p];
        const float bv = tb ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

class GemmTransposeTest : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(GemmTransposeTest, MatchesNaiveReference) {
  const auto [ta, tb] = GetParam();
  Rng rng(42);
  const std::int64_t m = 33, n = 47, k = 29;
  const Tensor a = Tensor::randn({ta ? k : m, ta ? m : k}, rng);
  const Tensor b = Tensor::randn({tb ? n : k, tb ? k : n}, rng);
  Tensor c_fast = Tensor::randn({m, n}, rng);
  Tensor c_ref = c_fast;
  gemm(ta, tb, m, n, k, 0.7F, a.data(), b.data(), 0.3F, c_fast.data());
  naive_gemm(ta, tb, m, n, k, 0.7F, a.data(), b.data(), 0.3F, c_ref.data());
  for (std::int64_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c_fast[i], c_ref[i], 1e-3F) << "mismatch at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, GemmTransposeTest,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()));

TEST(Ops, GemmLargeBlockedPath) {
  // Exercise sizes beyond one cache block in every dimension.
  Rng rng(3);
  const std::int64_t m = 130, n = 260, k = 270;
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  Tensor c_fast({m, n});
  Tensor c_ref({m, n});
  gemm(false, false, m, n, k, 1.0F, a.data(), b.data(), 0.0F, c_fast.data());
  naive_gemm(false, false, m, n, k, 1.0F, a.data(), b.data(), 0.0F, c_ref.data());
  double max_err = 0.0;
  for (std::int64_t i = 0; i < m * n; ++i) {
    max_err = std::max(max_err, std::abs(static_cast<double>(c_fast[i]) - c_ref[i]));
  }
  EXPECT_LT(max_err, 2e-3);
}

TEST(Ops, Im2ColIdentityKernel) {
  // 1x1 kernel, stride 1, no pad: im2col output is a channel-major
  // transpose of the image.
  Tensor img({1, 2, 2, 2}, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8});
  std::vector<float> cols(8);
  im2col(img.data(), 2, 2, 2, 1, 1, 1, 0, cols.data());
  // Row p = (pixel p of channel 0, pixel p of channel 1).
  EXPECT_EQ(cols[0], 1.0F);
  EXPECT_EQ(cols[1], 5.0F);
  EXPECT_EQ(cols[6], 4.0F);
  EXPECT_EQ(cols[7], 8.0F);
}

TEST(Ops, Im2ColPaddingProducesZeros) {
  Tensor img({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  const std::int64_t oh = conv_out_size(2, 3, 1, 1);
  ASSERT_EQ(oh, 2);
  std::vector<float> cols(static_cast<std::size_t>(oh * oh * 9));
  im2col(img.data(), 1, 2, 2, 3, 3, 1, 1, cols.data());
  // Top-left output position: the first row of the 3x3 patch is padding.
  EXPECT_EQ(cols[0], 0.0F);
  EXPECT_EQ(cols[4], 1.0F);  // center = pixel (0,0)
}

// Regression: conv_out_size used to divide by a zero/negative stride and
// return a negative size for kernels larger than the padded input — callers
// cast that through size_t into multi-exabyte allocation requests.
TEST(Ops, ConvOutSizeRejectsInvalidGeometry) {
  EXPECT_EQ(conv_out_size(8, 3, 1, 0), 6);
  EXPECT_EQ(conv_out_size(8, 3, 2, 1), 4);
  EXPECT_EQ(conv_out_size(5, 5, 1, 0), 1);  // kernel == padded input is legal
  EXPECT_THROW(conv_out_size(8, 3, 0, 1), std::invalid_argument);   // stride 0
  EXPECT_THROW(conv_out_size(8, 3, -1, 1), std::invalid_argument);  // stride < 0
  EXPECT_THROW(conv_out_size(8, 0, 1, 0), std::invalid_argument);   // kernel 0
  EXPECT_THROW(conv_out_size(8, 3, 1, -1), std::invalid_argument);  // pad < 0
  EXPECT_THROW(conv_out_size(-1, 3, 1, 1), std::invalid_argument);  // in < 0
  EXPECT_THROW(conv_out_size(4, 7, 1, 1), std::invalid_argument);   // 7 > 4+2
  // Enough padding makes the same kernel legal again.
  EXPECT_EQ(conv_out_size(4, 7, 1, 2), 2);
}

TEST(Ops, Im2ColRejectsInvalidGeometry) {
  Tensor img({1, 1, 4, 4});
  std::vector<float> cols(256);
  EXPECT_THROW(im2col(img.data(), 1, 4, 4, 3, 3, 0, 1, cols.data()),
               std::invalid_argument);
  EXPECT_THROW(im2col(img.data(), 1, 4, 4, 7, 7, 1, 0, cols.data()),
               std::invalid_argument);
  std::vector<float> grad(16, 0.0F);
  EXPECT_THROW(col2im(cols.data(), 1, 4, 4, 3, 3, -1, 1, grad.data()),
               std::invalid_argument);
}

TEST(Ops, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
  // property the conv backward pass relies on.
  Rng rng(11);
  const std::int64_t c = 3, h = 6, w = 5, kh = 3, kw = 3, stride = 2, pad = 1;
  const std::int64_t oh = conv_out_size(h, kh, stride, pad);
  const std::int64_t ow = conv_out_size(w, kw, stride, pad);
  const std::int64_t cols_len = oh * ow * c * kh * kw;
  const Tensor x = Tensor::randn({c * h * w}, rng);
  const Tensor y = Tensor::randn({cols_len}, rng);
  std::vector<float> cols(static_cast<std::size_t>(cols_len));
  im2col(x.data(), c, h, w, kh, kw, stride, pad, cols.data());
  std::vector<float> back(static_cast<std::size_t>(c * h * w), 0.0F);
  col2im(y.data(), c, h, w, kh, kw, stride, pad, back.data());
  double lhs = 0.0, rhs = 0.0;
  for (std::int64_t i = 0; i < cols_len; ++i) lhs += static_cast<double>(cols[static_cast<std::size_t>(i)]) * y[i];
  for (std::int64_t i = 0; i < c * h * w; ++i) rhs += static_cast<double>(x[i]) * back[static_cast<std::size_t>(i)];
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::abs(lhs)));
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(5);
  Tensor x = Tensor::randn({4, 7}, rng, 3.0F);
  softmax_rows(x.data(), 4, 7);
  for (std::int64_t r = 0; r < 4; ++r) {
    double s = 0.0;
    for (std::int64_t j = 0; j < 7; ++j) {
      const float v = x.data()[r * 7 + j];
      EXPECT_GE(v, 0.0F);
      s += v;
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Ops, LogSoftmaxMatchesSoftmaxLog) {
  Rng rng(6);
  const Tensor x = Tensor::randn({3, 5}, rng, 2.0F);
  Tensor sm = x;
  softmax_rows(sm.data(), 3, 5);
  Tensor lsm({3, 5});
  log_softmax_rows(x.data(), 3, 5, lsm.data());
  for (std::int64_t i = 0; i < 15; ++i) {
    EXPECT_NEAR(lsm[i], std::log(sm[i]), 1e-5);
  }
}

TEST(Ops, SoftmaxIsShiftInvariantAndStable) {
  Tensor x({1, 3}, std::vector<float>{1000.0F, 1001.0F, 1002.0F});
  softmax_rows(x.data(), 1, 3);
  EXPECT_FALSE(std::isnan(x[0]));
  EXPECT_NEAR(x[0] + x[1] + x[2], 1.0, 1e-5);
  EXPECT_GT(x[2], x[1]);
}

TEST(Ops, DotAndAxpy) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{4, 5, 6});
  EXPECT_DOUBLE_EQ(dot(a.flat(), b.flat()), 32.0);
  axpy(2.0F, a.flat(), b.flat());
  EXPECT_EQ(b[0], 6.0F);
  EXPECT_EQ(b[2], 12.0F);
}

TEST(Ops, StackSamplesAndSliceRowRoundTrip) {
  Rng rng(77);
  std::vector<Tensor> samples;
  for (int i = 0; i < 3; ++i) samples.push_back(Tensor::randn({2, 4, 4}, rng));
  const Tensor batch = stack_samples(samples);
  ASSERT_EQ(batch.shape(), (Shape{3, 2, 4, 4}));
  for (std::int64_t n = 0; n < 3; ++n) {
    const Tensor row = slice_row(batch, n);
    ASSERT_EQ(row.shape(), (Shape{2, 4, 4}));
    for (std::int64_t i = 0; i < row.numel(); ++i) {
      EXPECT_EQ(row[i], samples[static_cast<std::size_t>(n)][i]);
    }
  }
}

TEST(Ops, StackSamplesValidates) {
  Rng rng(78);
  EXPECT_THROW(stack_samples({}), std::invalid_argument);
  std::vector<Tensor> mismatched;
  mismatched.push_back(Tensor::randn({2, 4}, rng));
  mismatched.push_back(Tensor::randn({2, 5}, rng));
  EXPECT_THROW(stack_samples(mismatched), std::invalid_argument);
}

TEST(Ops, SliceRowValidates) {
  Rng rng(79);
  const Tensor batch = Tensor::randn({2, 3}, rng);
  EXPECT_THROW(slice_row(batch, -1), std::invalid_argument);
  EXPECT_THROW(slice_row(batch, 2), std::invalid_argument);
  const Tensor scalar(Shape{});
  EXPECT_THROW(slice_row(scalar, 0), std::invalid_argument);
}

}  // namespace
}  // namespace clado::tensor
