#include "clado/core/algorithms.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "clado/linalg/eigen.h"
#include "clado/solver/mckp.h"
#include "test_models_util.h"

namespace clado::core {
namespace {

using clado::testing::full_loss;
using clado::testing::make_noise_batch;
using clado::testing::make_tiny_model;
using clado::testing::Model;
using clado::tensor::Rng;

struct PipelineFixture {
  Rng rng{1};
  Model model;
  clado::data::Batch batch;
  std::unique_ptr<MpqPipeline> pipe;

  explicit PipelineFixture(PipelineOptions opts = {}) : model(make_tiny_model(rng)) {
    Rng brng(2);
    batch = make_noise_batch(brng);
    pipe = std::make_unique<MpqPipeline>(model, batch, opts);
  }
};

TEST(AlgorithmName, AllNamed) {
  EXPECT_STREQ(algorithm_name(Algorithm::kHawq), "HAWQ");
  EXPECT_STREQ(algorithm_name(Algorithm::kMpqco), "MPQCO");
  EXPECT_STREQ(algorithm_name(Algorithm::kCladoStar), "CLADO*");
  EXPECT_STREQ(algorithm_name(Algorithm::kClado), "CLADO");
  EXPECT_STREQ(algorithm_name(Algorithm::kBrecqBlock), "BRECQ-block");
}

TEST(MpqPipeline, SizeCostsMatchWeightCounts) {
  PipelineFixture f;
  const auto costs = f.pipe->size_costs();
  ASSERT_EQ(costs.size(), 4U);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    const auto numel =
        static_cast<double>(f.model.quant_layers[i].layer->weight_param().value.numel());
    EXPECT_DOUBLE_EQ(costs[i][0], numel * 2 / 8.0);  // 2-bit
    EXPECT_DOUBLE_EQ(costs[i][1], numel * 8 / 8.0);  // 8-bit
  }
}

TEST(MpqPipeline, BlockIdsAreStageIndices) {
  PipelineFixture f;
  const auto ids = f.pipe->block_ids();
  EXPECT_EQ(ids, (std::vector<int>{0, 1, 1, 3}));
}

TEST(MpqPipeline, PsdMatrixIsPsd) {
  PipelineFixture f;
  EXPECT_GE(clado::linalg::min_eigenvalue(f.pipe->clado_matrix()), -1e-4);
}

TEST(MpqPipeline, EveryAlgorithmMeetsTheBudget) {
  PipelineFixture f;
  const double int8 = f.model.uniform_size_bytes(8);
  for (double frac : {0.3, 0.5, 0.8}) {
    for (auto alg : {Algorithm::kHawq, Algorithm::kMpqco, Algorithm::kCladoStar,
                     Algorithm::kClado, Algorithm::kBrecqBlock}) {
      const auto a = f.pipe->assign(alg, int8 * frac);
      EXPECT_LE(a.bytes, int8 * frac + 1e-6) << algorithm_name(alg) << " frac " << frac;
      EXPECT_EQ(a.bits.size(), 4U);
      for (int b : a.bits) {
        EXPECT_TRUE(b == 2 || b == 8) << algorithm_name(alg);
      }
    }
  }
}

TEST(MpqPipeline, GenerousBudgetGivesAllHighBits) {
  // Only MPQCO's proxy is guaranteed nonnegative and bit-monotone on an
  // untrained model (it is a squared output perturbation); HAWQ traces and
  // loss-difference sensitivities can legitimately go negative here.
  PipelineFixture f;
  const double int8 = f.model.uniform_size_bytes(8);
  const auto a = f.pipe->assign(Algorithm::kMpqco, int8 * 1.01);
  for (int b : a.bits) EXPECT_EQ(b, 8);
}

TEST(MpqPipeline, TightBudgetForcesAllLowBits) {
  PipelineFixture f;
  const double int2 = f.model.uniform_size_bytes(2);
  for (auto alg : {Algorithm::kHawq, Algorithm::kClado}) {
    const auto a = f.pipe->assign(alg, int2 * 1.01);
    for (int b : a.bits) EXPECT_EQ(b, 2) << algorithm_name(alg);
  }
}

TEST(MpqPipeline, InfeasibleBudgetThrows) {
  PipelineFixture f;
  const double int2 = f.model.uniform_size_bytes(2);
  EXPECT_THROW(f.pipe->assign(Algorithm::kClado, int2 * 0.5), std::runtime_error);
  EXPECT_THROW(f.pipe->assign(Algorithm::kHawq, int2 * 0.5), std::runtime_error);
}

TEST(MpqPipeline, CladoStarSolvesDiagonalIqpExactly) {
  // CLADO* (separable MCKP) must equal the IQP run on keep_diagonal(Ĝ):
  // the two formulations coincide when cross terms vanish.
  PipelineFixture f;
  const double target = f.model.uniform_size_bytes(8) * 0.55;
  const auto star = f.pipe->assign(Algorithm::kCladoStar, target);

  clado::solver::QuadraticProblem p;
  p.G = keep_diagonal(f.pipe->clado_matrix_raw());
  p.cost = f.pipe->size_costs();
  p.budget = target;
  const auto exact = clado::solver::solve_iqp_brute_force(p);
  ASSERT_TRUE(exact.feasible);
  EXPECT_NEAR(star.predicted, exact.objective, 1e-5 + 1e-3 * std::abs(exact.objective));
}

TEST(MpqPipeline, CladoMatchesBruteForceIqp) {
  PipelineFixture f;
  const double target = f.model.uniform_size_bytes(8) * 0.55;
  const auto clado = f.pipe->assign(Algorithm::kClado, target);

  clado::solver::QuadraticProblem p;
  p.G = f.pipe->clado_matrix();
  p.cost = f.pipe->size_costs();
  p.budget = target;
  const auto exact = clado::solver::solve_iqp_brute_force(p);
  ASSERT_TRUE(exact.feasible);
  EXPECT_NEAR(clado.predicted, exact.objective, 1e-5 + 1e-3 * std::abs(exact.objective));
  EXPECT_TRUE(clado.proven_optimal);
}

TEST(MpqPipeline, CladoPredictedObjectiveNotWorseThanCladoStarChoice) {
  // Evaluated under the full PSD matrix, CLADO's assignment must score at
  // least as well as the diagonal-only assignment — it optimizes that
  // objective directly.
  PipelineFixture f;
  const double target = f.model.uniform_size_bytes(8) * 0.5;
  const auto clado = f.pipe->assign(Algorithm::kClado, target);
  const auto star = f.pipe->assign(Algorithm::kCladoStar, target);

  clado::solver::QuadraticProblem p;
  p.G = f.pipe->clado_matrix();
  p.cost = f.pipe->size_costs();
  p.budget = target;
  EXPECT_LE(p.integer_objective(clado.choice), p.integer_objective(star.choice) + 1e-6);
}

TEST(MpqPipeline, HawqAndMpqcoValuesAreFiniteAndMostlyPositive) {
  PipelineFixture f;
  for (const auto& row : f.pipe->hawq_values()) {
    for (double v : row) EXPECT_TRUE(std::isfinite(v));
  }
  int positive = 0, total = 0;
  for (const auto& row : f.pipe->mpqco_values()) {
    for (double v : row) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, 0.0);  // Gauss-Newton proxy is a squared norm
      positive += v > 0.0 ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GT(positive, total / 2);
}

TEST(MpqPipeline, SeparableValuesDecreaseWithBits) {
  // 8-bit quantization error is smaller than 2-bit, so every separable
  // sensitivity must be (weakly) decreasing in the bit-width.
  PipelineFixture f;
  for (const auto& row : f.pipe->mpqco_values()) {
    EXPECT_LE(row[1], row[0] + 1e-12);  // bits {2, 8} ascending
  }
  for (const auto& row : f.pipe->hawq_values()) {
    // Trace estimate can be negative on a noisy tiny model; compare
    // magnitudes through the shared trace factor instead.
    EXPECT_LE(std::abs(row[1]), std::abs(row[0]) + 1e-12);
  }
}

TEST(MpqPipeline, ApplyPtqChangesLossAndRestores) {
  PipelineFixture f;
  const double base = full_loss(f.model, f.batch);
  const auto a = f.pipe->assign(Algorithm::kClado, f.model.uniform_size_bytes(8) * 0.3);
  {
    auto snapshot = f.pipe->apply_ptq(a);
    const double quantized = full_loss(f.model, f.batch);
    EXPECT_NE(quantized, base);
  }
  EXPECT_NEAR(full_loss(f.model, f.batch), base, 1e-7);
}

TEST(MpqPipeline, SensitivitySaveLoadRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "clado_sens_cache";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "tiny.sens").string();

  PipelineFixture writer;
  writer.pipe->save_sensitivities(path);
  const auto ref = writer.pipe->assign(Algorithm::kClado,
                                       writer.model.uniform_size_bytes(8) * 0.5);

  // A fresh pipeline over the same model/batch loads the matrix and must
  // reproduce the assignment without re-measuring.
  PipelineFixture reader;
  reader.pipe->load_sensitivities(path);
  const auto before = reader.pipe->engine().stats().forward_measurements;
  const auto got = reader.pipe->assign(Algorithm::kClado,
                                       reader.model.uniform_size_bytes(8) * 0.5);
  EXPECT_EQ(reader.pipe->engine().stats().forward_measurements, before);
  EXPECT_EQ(got.bits, ref.bits);
  std::filesystem::remove_all(dir);
}

TEST(MpqPipeline, LoadSensitivitiesRejectsMismatch) {
  const auto dir = std::filesystem::temp_directory_path() / "clado_sens_cache2";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "bad.sens").string();
  // Write a structurally wrong file.
  clado::tensor::StateDict dict;
  dict.emplace("g_raw", clado::nn::Tensor({4, 4}));
  dict.emplace("meta", clado::nn::Tensor({3}, std::vector<float>{2.0F, 2.0F, 0.0F}));
  clado::tensor::save_state_dict(dict, path);

  PipelineFixture f;  // 4 layers x 2 bits -> expects [8, 8]
  EXPECT_THROW(f.pipe->load_sensitivities(path), std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(MpqPipeline, PsdAblationFallsBackGracefully) {
  PipelineOptions opts;
  opts.psd_projection = false;
  opts.iqp.max_nodes = 50;  // force the degenerate regime quickly
  PipelineFixture f(opts);
  const auto a = f.pipe->assign(Algorithm::kClado, f.model.uniform_size_bytes(8) * 0.5);
  EXPECT_LE(a.bytes, f.model.uniform_size_bytes(8) * 0.5 + 1e-6);
  EXPECT_FALSE(a.proven_optimal);
}

TEST(MpqPipeline, BrecqBlockDiffersFromCladoOnlyViaMask) {
  PipelineFixture f;
  const auto masked = mask_inter_block(f.pipe->clado_matrix_raw(), f.pipe->block_ids(), 2);
  // Layers 1 and 2 share a block: their cross entries survive.
  const std::int64_t n = masked.size(0);
  bool intra_nonzero = false;
  for (std::int64_t a = 0; a < 2; ++a) {
    for (std::int64_t b = 0; b < 2; ++b) {
      if (masked.data()[flat_index(1, a, 2) * n + flat_index(2, b, 2)] != 0.0F) {
        intra_nonzero = true;
      }
      EXPECT_EQ(masked.data()[flat_index(0, a, 2) * n + flat_index(3, b, 2)], 0.0F);
    }
  }
  EXPECT_TRUE(intra_nonzero);
}

}  // namespace
}  // namespace clado::core
