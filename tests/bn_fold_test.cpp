#include "clado/quant/bn_fold.h"

#include <gtest/gtest.h>

#include <cmath>

#include "clado/nn/blocks.h"
#include "clado/nn/layers.h"
#include "clado/nn/loss.h"
#include "clado/core/algorithms.h"
#include "clado/quant/qat.h"
#include "test_models_util.h"

namespace clado::quant {
namespace {

using clado::nn::Activation;
using clado::nn::BatchNorm2d;
using clado::nn::Conv2d;
using clado::nn::ResidualBlock;
using clado::nn::Sequential;
using clado::nn::Tensor;
using clado::tensor::Rng;

/// conv-bn-relu-conv-bn stack with warmed-up running statistics.
void warm_bn_stats(Sequential& seq, Rng& rng, std::int64_t channels, std::int64_t size) {
  seq.set_training(true);
  for (int i = 0; i < 20; ++i) {
    seq.forward(Tensor::randn({8, channels, size, size}, rng));
  }
  seq.set_training(false);
}

TEST(BnFold, PlainConvBnPairMatchesExactly) {
  Rng rng(1);
  Sequential seq;
  seq.emplace_named<Conv2d>("conv", 3, 6, 3, 1, 1, 1, /*bias=*/false)->init(rng);
  seq.emplace_named<BatchNorm2d>("bn", 6);
  warm_bn_stats(seq, rng, 3, 6);

  const Tensor x = Tensor::randn({4, 3, 6, 6}, rng);
  const Tensor before = seq.forward(x);
  EXPECT_EQ(fold_batchnorm(seq), 1);
  const Tensor after = seq.forward(x);
  ASSERT_EQ(after.shape(), before.shape());
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_NEAR(after[i], before[i], 1e-4F + 1e-4F * std::abs(before[i])) << i;
  }
  // BN is now an Identity.
  EXPECT_EQ(seq.child(1).type_name(), "Identity");
}

TEST(BnFold, ConvWithBiasFoldsCorrectly) {
  Rng rng(2);
  Sequential seq;
  seq.emplace_named<Conv2d>("conv", 2, 4, 1, 1, 0, 1, /*bias=*/true)->init(rng);
  // Give the bias nonzero values so the b' = b*s + shift path is exercised.
  std::vector<clado::nn::ParamRef> params;
  seq.collect_params("", params);
  for (auto& p : params) {
    if (p.name == "conv.bias") {
      for (auto& v : p.param->value.flat()) v = 0.3F;
    }
  }
  seq.emplace_named<BatchNorm2d>("bn", 4);
  warm_bn_stats(seq, rng, 2, 4);

  const Tensor x = Tensor::randn({2, 2, 4, 4}, rng);
  const Tensor before = seq.forward(x);
  ASSERT_EQ(fold_batchnorm(seq), 1);
  const Tensor after = seq.forward(x);
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_NEAR(after[i], before[i], 1e-4F + 1e-4F * std::abs(before[i]));
  }
}

TEST(BnFold, RecursesIntoResidualBlocksAndShortcuts) {
  Rng rng(3);
  auto main = std::make_unique<Sequential>();
  main->emplace_named<Conv2d>("conv1", 4, 4, 3, 1, 1, 1, false)->init(rng);
  main->emplace_named<BatchNorm2d>("bn1", 4);
  main->emplace_named<Activation>("act", clado::nn::Act::kRelu);
  main->emplace_named<Conv2d>("conv2", 4, 8, 3, 2, 1, 1, false)->init(rng);
  main->emplace_named<BatchNorm2d>("bn2", 8);
  auto shortcut = std::make_unique<Sequential>();
  shortcut->emplace_named<Conv2d>("conv0", 4, 8, 1, 2, 0, 1, false)->init(rng);
  shortcut->emplace_named<BatchNorm2d>("bn0", 8);

  Sequential seq;
  seq.push_back(std::make_unique<ResidualBlock>(std::move(main), std::move(shortcut), true),
                "block");
  warm_bn_stats(seq, rng, 4, 8);

  const Tensor x = Tensor::randn({2, 4, 8, 8}, rng);
  const Tensor before = seq.forward(x);
  EXPECT_EQ(fold_batchnorm(seq), 3);
  const Tensor after = seq.forward(x);
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_NEAR(after[i], before[i], 2e-4F + 2e-4F * std::abs(before[i]));
  }
}

TEST(BnFold, NoFoldableBnReturnsZero) {
  Rng rng(4);
  Sequential seq;
  seq.emplace_named<Conv2d>("conv", 2, 2, 1, 1, 0)->init(rng);
  seq.emplace_named<Activation>("act", clado::nn::Act::kRelu);  // breaks adjacency
  seq.emplace_named<BatchNorm2d>("bn", 2);
  EXPECT_EQ(fold_batchnorm(seq), 0);
}

TEST(BnFold, WholeZooModelEndToEnd) {
  // Fold a complete model: accuracy (hence logits) must be preserved and
  // the quant-layer list must stay valid for MPQ afterwards.
  clado::tensor::Rng rng(5);
  clado::models::Model bn_model;
  bn_model.net = std::make_unique<Sequential>();
  bn_model.candidate_bits = {2, 8};
  bn_model.scheme = WeightScheme::kPerTensorSymmetric;
  {
    auto stem = std::make_unique<Sequential>();
    stem->emplace_named<Conv2d>("conv1", 3, 6, 3, 1, 1, 1, false)->init(rng);
    stem->emplace_named<BatchNorm2d>("bn1", 6);
    stem->emplace_named<Activation>("act", clado::nn::Act::kRelu);
    bn_model.net->push_back(std::move(stem), "stem");
  }
  bn_model.net->emplace_named<clado::nn::GlobalAvgPool>("pool");
  bn_model.net->emplace_named<clado::nn::Linear>("fc", 6, 5)->init(rng);
  bn_model.finalize();

  Rng drng(6);
  const Tensor x = Tensor::randn({8, 3, 8, 8}, drng);
  bn_model.net->set_training(true);
  for (int i = 0; i < 10; ++i) bn_model.net->forward(x);
  bn_model.net->set_training(false);

  const Tensor before = bn_model.net->forward(x);
  EXPECT_EQ(fold_batchnorm(*bn_model.net), 1);
  const Tensor after = bn_model.net->forward(x);
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_NEAR(after[i], before[i], 1e-4F + 1e-4F * std::abs(before[i]));
  }

  // The quant-layer references remain usable: weights can still be baked.
  std::vector<int> bits(bn_model.quant_layers.size(), 8);
  EXPECT_NO_THROW(bake_weights(bn_model.quant_layers, bits, bn_model.scheme));
}

TEST(BnFold, MpqPipelineRunsOnFoldedGraph) {
  // The full sensitivity + IQP pipeline must work unchanged on a folded
  // model (the deployment-graph workflow of bench_ablation_bnfold).
  clado::tensor::Rng rng(7);
  clado::models::Model m;
  m.net = std::make_unique<Sequential>();
  m.candidate_bits = {2, 8};
  m.scheme = WeightScheme::kPerTensorSymmetric;
  m.num_classes = 5;
  {
    auto stem = std::make_unique<Sequential>();
    stem->emplace_named<Conv2d>("conv1", 3, 4, 3, 1, 1, 1, false)->init(rng);
    stem->emplace_named<BatchNorm2d>("bn1", 4);
    stem->emplace_named<Activation>("act", clado::nn::Act::kRelu);
    m.net->push_back(std::move(stem), "stem");
  }
  {
    auto main = std::make_unique<Sequential>();
    main->emplace_named<Conv2d>("conv1", 4, 4, 3, 1, 1, 1, false)->init(rng);
    main->emplace_named<BatchNorm2d>("bn1", 4);
    m.net->push_back(std::make_unique<ResidualBlock>(std::move(main), nullptr, true), "block");
  }
  m.net->emplace_named<clado::nn::GlobalAvgPool>("pool");
  m.net->emplace_named<clado::nn::Linear>("fc", 4, 5)->init(rng);
  m.finalize();

  clado::tensor::Rng drng(8);
  clado::data::Batch batch;
  batch.images = Tensor::randn({12, 3, 8, 8}, drng);
  for (int i = 0; i < 12; ++i) batch.labels.push_back(i % 5);
  m.net->set_training(true);
  for (int i = 0; i < 10; ++i) m.net->forward(batch.images);
  m.net->set_training(false);

  EXPECT_EQ(fold_batchnorm(*m.net), 2);
  clado::core::MpqPipeline pipe(m, batch, {});
  const double target = uniform_bytes(m.quant_layers, 8) * 0.6;
  const auto a = pipe.assign(clado::core::Algorithm::kClado, target);
  EXPECT_LE(a.bytes, target + 1e-6);
  EXPECT_EQ(a.bits.size(), m.quant_layers.size());
}

}  // namespace
}  // namespace clado::quant
