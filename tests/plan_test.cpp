// clado::serve::CompiledPlan coverage: fused-vs-eager bit-identity across
// the whole model zoo (including activation-quantized engines), grouped /
// strided / unpadded conv geometry, the liveness property of the arena
// planner (live buffers never share storage), zero steady-state heap
// allocation, and strict CLADO_FUSION parsing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "clado/data/synthcv.h"
#include "clado/models/builders.h"
#include "clado/models/model.h"
#include "clado/nn/blocks.h"
#include "clado/nn/layers.h"
#include "clado/serve/engine.h"
#include "clado/serve/plan.h"
#include "clado/tensor/rng.h"
#include "clado/tensor/tensor.h"

namespace {

using clado::models::Model;
using clado::serve::Engine;
using clado::serve::EngineSpec;
using clado::serve::Fusion;
using clado::serve::PlanBuffer;
using clado::tensor::Rng;
using clado::tensor::Tensor;

/// Builds a calibrated zoo model and freezes it twice — once fused, once
/// eager — from bit-identical clones.
struct EnginePair {
  std::unique_ptr<Engine> fused;
  std::unique_ptr<Engine> eager;
};

EnginePair make_engines(const std::string& name, std::int64_t max_batch, int bits_value = 8) {
  Rng rng(202);
  Model model = clado::models::build_by_name(name, rng, /*num_classes=*/10);

  clado::data::Batch calib;
  Rng data_rng(303);
  calib.images = Tensor::randn({4, model.channels, model.image_size, model.image_size}, data_rng);
  for (std::int64_t i = 0; i < 4; ++i) calib.labels.push_back(i % model.num_classes);
  model.calibrate_activations(calib);

  Model twin = model.clone();
  std::vector<int> bits(model.quant_layers.size(), bits_value);

  EnginePair pair;
  EngineSpec fused_spec;
  fused_spec.bits = bits;
  fused_spec.label = "fused";
  fused_spec.max_batch = max_batch;
  fused_spec.fusion = Fusion::kOn;
  pair.fused = std::make_unique<Engine>(std::move(model), std::move(fused_spec));

  EngineSpec eager_spec;
  eager_spec.bits = bits;
  eager_spec.label = "eager";
  eager_spec.max_batch = max_batch;
  eager_spec.fusion = Fusion::kOff;
  pair.eager = std::make_unique<Engine>(std::move(twin), std::move(eager_spec));
  return pair;
}

void expect_bit_identical(Engine& fused, Engine& eager, std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  const auto& s = fused.sample_shape();
  const Tensor batch = Tensor::randn({n, s[0], s[1], s[2]}, rng);
  const Tensor a = fused.infer(batch);
  const Tensor b = eager.infer(batch);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "n=" << n << " logit " << i;
  }
}

TEST(CompiledPlan, FusedMatchesEagerAcrossZoo) {
  for (const std::string& name : clado::models::model_names()) {
    SCOPED_TRACE(name);
    EnginePair pair = make_engines(name, /*max_batch=*/4);
    ASSERT_TRUE(pair.fused->fused());
    ASSERT_FALSE(pair.eager->fused());
    ASSERT_NE(pair.fused->plan(0), nullptr);
    expect_bit_identical(*pair.fused, *pair.eager, /*n=*/3, /*seed=*/500);
    expect_bit_identical(*pair.fused, *pair.eager, /*n=*/1, /*seed=*/501);
  }
}

TEST(CompiledPlan, CnnZooModelsCompileWithoutFallbacks) {
  for (const std::string name : {"resnet_a", "resnet_b"}) {
    SCOPED_TRACE(name);
    EnginePair pair = make_engines(name, 2);
    EXPECT_EQ(pair.fused->plan(0)->fallback_steps(), 0u)
        << "the CNN path regressed into Module::forward staging";
  }
  // The transformer encoder is out of the compiler's vocabulary by design.
  EnginePair vit = make_engines("vit_mini", 2);
  EXPECT_GT(vit.fused->plan(0)->fallback_steps(), 0u);
}

/// Stride > 1, pad = 0 and grouped convolutions all change the im2col
/// geometry; a planner bug here shows up as a shape throw or wrong logits.
Model make_geometry_model(Rng& rng) {
  using namespace clado::nn;
  Model m;
  m.name = "geometry";
  m.net = std::make_unique<Sequential>();
  m.candidate_bits = {2, 8};
  m.num_classes = 6;
  m.image_size = 16;

  m.net->emplace_named<Conv2d>("stem", 3, 8, 3, /*stride=*/2, /*pad=*/0)->init(rng);
  m.net->emplace_named<Activation>("act1", Act::kRelu);
  m.net->emplace_named<Conv2d>("grouped", 8, 8, 3, 1, 1, /*groups=*/4)->init(rng);
  m.net->emplace_named<Activation>("act2", Act::kHardSwish);
  m.net->emplace_named<MaxPool2d>("pool", 2, 2);
  m.net->emplace_named<Conv2d>("proj", 8, 4, 1, 1, 0, 1, /*bias=*/false)->init(rng);
  m.net->emplace_named<GlobalAvgPool>("gap");
  m.net->emplace_named<Linear>("fc", 4, 6)->init(rng);
  m.finalize();
  return m;
}

EnginePair make_geometry_pair(std::int64_t max_batch) {
  Rng rng(77);
  Model model = make_geometry_model(rng);
  Model twin = model.clone();
  EnginePair pair;
  EngineSpec on;
  on.max_batch = max_batch;
  on.fusion = Fusion::kOn;
  pair.fused = std::make_unique<Engine>(std::move(model), std::move(on));
  EngineSpec off;
  off.max_batch = max_batch;
  off.fusion = Fusion::kOff;
  pair.eager = std::make_unique<Engine>(std::move(twin), std::move(off));
  return pair;
}

TEST(CompiledPlan, FusedMatchesEagerOnGroupedStridedUnpaddedConvs) {
  EnginePair pair = make_geometry_pair(/*max_batch=*/5);
  EXPECT_EQ(pair.fused->plan(0)->fallback_steps(), 0u);
  expect_bit_identical(*pair.fused, *pair.eager, 5, 600);
  expect_bit_identical(*pair.fused, *pair.eager, 1, 601);
}

TEST(CompiledPlan, PredictMatchesBatchedInference) {
  EnginePair pair = make_geometry_pair(4);
  Rng rng(55);
  for (int i = 0; i < 3; ++i) {
    const Tensor sample = Tensor::randn({3, 16, 16}, rng);
    Tensor one = sample;
    one.reshape_inplace({1, 3, 16, 16});
    const std::int64_t expected = pair.eager->infer(one).argmax();
    EXPECT_EQ(pair.fused->predict(sample), expected);
    EXPECT_EQ(pair.eager->predict(sample), expected);
    EXPECT_EQ(pair.fused->predict(one), expected);  // [1, C, H, W] accepted too
  }
}

TEST(CompiledPlan, LiveArenaBuffersNeverOverlap) {
  for (const std::string name : {"resnet_a", "mobilenet_v3_mini"}) {
    SCOPED_TRACE(name);
    EnginePair pair = make_engines(name, 3);
    const auto* plan = pair.fused->plan(0);
    const std::vector<PlanBuffer>& bufs = plan->buffers();
    ASSERT_GT(bufs.size(), 1u);
    for (const PlanBuffer& b : bufs) {
      EXPECT_GE(b.offset, 0);
      EXPECT_LE(b.offset + b.numel, plan->arena_numel());
    }
    for (std::size_t i = 0; i < bufs.size(); ++i) {
      for (std::size_t j = i + 1; j < bufs.size(); ++j) {
        const PlanBuffer& a = bufs[i];
        const PlanBuffer& b = bufs[j];
        const bool live_overlap = a.def_step <= b.last_step && b.def_step <= a.last_step;
        if (!live_overlap) continue;
        const bool storage_disjoint =
            a.offset + a.numel <= b.offset || b.offset + b.numel <= a.offset;
        EXPECT_TRUE(storage_disjoint)
            << "buffers " << i << " and " << j << " are simultaneously live at overlapping "
            << "arena ranges [" << a.offset << ", " << a.offset + a.numel << ") and ["
            << b.offset << ", " << b.offset + b.numel << ")";
      }
    }
  }
}

TEST(CompiledPlan, SteadyStateRunsAreAllocationFree) {
  if (!clado::tensor::alloc_counting_enabled()) {
    GTEST_SKIP() << "tensor allocation counting is compiled out of this build "
                    "(Release without CLADO_ENABLE_CHECKS); the sanitizer CI job enforces this";
  }
  EnginePair pair = make_geometry_pair(/*max_batch=*/4);
  Engine& engine = *pair.fused;
  Rng rng(88);
  const Tensor batch = Tensor::randn({4, 3, 16, 16}, rng);
  float* pin = engine.batch_buffer(0);
  ASSERT_NE(pin, nullptr);
  std::memcpy(pin, batch.data(), sizeof(float) * static_cast<std::size_t>(batch.numel()));

  Tensor out;
  for (int i = 0; i < 3; ++i) engine.infer_pinned(4, out, 0);  // warmup
  const std::int64_t before = clado::tensor::alloc_count();
  for (int i = 0; i < 50; ++i) engine.infer_pinned(4, out, 0);
  EXPECT_EQ(clado::tensor::alloc_count(), before)
      << "steady-state fused inference touched the heap";
}

TEST(CompiledPlan, FusionEnvParsesStrictly) {
  Rng rng(99);
  ASSERT_EQ(::setenv("CLADO_FUSION", "sideways", 1), 0);
  EXPECT_THROW(Engine(make_geometry_model(rng), EngineSpec{}), std::invalid_argument);
  ASSERT_EQ(::setenv("CLADO_FUSION", "off", 1), 0);
  {
    Engine engine(make_geometry_model(rng), EngineSpec{});
    EXPECT_FALSE(engine.fused());
    EXPECT_EQ(engine.plan_batch_capacity(), 0);
    EXPECT_EQ(engine.batch_buffer(0), nullptr);
    Tensor out;
    EXPECT_THROW(engine.infer_pinned(1, out, 0), std::logic_error);
  }
  ASSERT_EQ(::setenv("CLADO_FUSION", "1", 1), 0);
  {
    Engine engine(make_geometry_model(rng), EngineSpec{});
    EXPECT_TRUE(engine.fused());
  }
  ::unsetenv("CLADO_FUSION");
  Engine engine(make_geometry_model(rng), EngineSpec{});
  EXPECT_TRUE(engine.fused()) << "unset CLADO_FUSION must default to fused";
}

TEST(CompiledPlan, ReplicaPlansAgree) {
  Rng rng(121);
  Model model = make_geometry_model(rng);
  EngineSpec spec;
  spec.replicas = 2;
  spec.max_batch = 2;
  spec.fusion = Fusion::kOn;
  Engine engine(std::move(model), std::move(spec));
  ASSERT_NE(engine.plan(1), nullptr);
  Rng data_rng(131);
  const Tensor batch = Tensor::randn({2, 3, 16, 16}, data_rng);
  const Tensor a = engine.infer(batch, 0);
  const Tensor b = engine.infer(batch, 1);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
}

/// Residual blocks whose main path (or shortcut) STARTS with an activation:
/// fusing that activation onto the step that produced the block input would
/// mutate the values the other branch still has to read.
Model make_preact_residual_model(Rng& rng) {
  using namespace clado::nn;
  Model m;
  m.name = "preact_residual";
  m.net = std::make_unique<Sequential>();
  m.candidate_bits = {2, 8};
  m.num_classes = 5;
  m.image_size = 8;

  m.net->emplace_named<Conv2d>("stem", 3, 6, 3, 1, 1)->init(rng);
  auto pre_main = std::make_unique<Sequential>();
  pre_main->emplace_named<Activation>("preact", Act::kRelu);
  pre_main->emplace_named<Conv2d>("conv", 6, 6, 3, 1, 1)->init(rng);
  m.net->emplace_named<ResidualBlock>("preact_block", std::move(pre_main), nullptr,
                                      /*final_relu=*/false);

  auto id_main = std::make_unique<Sequential>();
  id_main->emplace_named<Identity>("id");
  auto shortcut = std::make_unique<Sequential>();
  shortcut->emplace_named<Activation>("shortact", Act::kHardSwish);
  shortcut->emplace_named<Conv2d>("shortconv", 6, 6, 1, 1, 0)->init(rng);
  m.net->emplace_named<ResidualBlock>("act_shortcut_block", std::move(id_main),
                                      std::move(shortcut), /*final_relu=*/true);

  m.net->emplace_named<GlobalAvgPool>("gap");
  m.net->emplace_named<Linear>("fc", 6, 5)->init(rng);
  m.finalize();
  return m;
}

TEST(CompiledPlan, ActivationLeadingResidualBranchesMatchEager) {
  Rng rng(161);
  Model model = make_preact_residual_model(rng);
  Model twin = model.clone();
  EnginePair pair;
  EngineSpec on;
  on.max_batch = 3;
  on.fusion = Fusion::kOn;
  pair.fused = std::make_unique<Engine>(std::move(model), std::move(on));
  EngineSpec off;
  off.max_batch = 3;
  off.fusion = Fusion::kOff;
  pair.eager = std::make_unique<Engine>(std::move(twin), std::move(off));

  // Both branch-leading activations must survive as standalone steps; fusing
  // either in place would corrupt the other branch's input.
  std::size_t standalone_acts = 0;
  for (const auto& step : pair.fused->plan(0)->steps()) {
    standalone_acts += step.kind == clado::serve::StepKind::kAct ? 1 : 0;
  }
  EXPECT_EQ(standalone_acts, 2u);
  EXPECT_EQ(pair.fused->plan(0)->fallback_steps(), 0u);
  expect_bit_identical(*pair.fused, *pair.eager, 3, 700);
  expect_bit_identical(*pair.fused, *pair.eager, 1, 701);
}

TEST(CompiledPlan, SEBlockWithWeightTransformFallsBack) {
  using namespace clado::nn;
  Rng rng(171);
  Sequential net;
  net.emplace_named<Conv2d>("stem", 3, 8, 3, 1, 1)->init(rng);
  net.emplace_named<SEBlock>("se", 8, 4)->init(rng);
  net.emplace_named<GlobalAvgPool>("gap");
  net.emplace_named<Linear>("fc", 8, 4)->init(rng);

  // Leave a QAT-style transform on the SE's inner linears; the fused SE step
  // reads raw weights, so the plan must stage the block through forward().
  std::vector<QuantLayerRef> layers;
  net.collect_quant_layers("", layers);
  std::size_t transformed = 0;
  for (auto& ref : layers) {
    if (ref.name.find("se.fc") == std::string::npos) continue;
    ref.layer->set_weight_transform([](const Tensor& w) { return w * 0.5F; });
    ++transformed;
  }
  ASSERT_EQ(transformed, 2u);

  net.set_inference(true);
  clado::serve::CompiledPlan plan(net, {3, 8, 8}, /*max_batch=*/2);
  EXPECT_GE(plan.fallback_steps(), 1u);

  Rng data_rng(172);
  const Tensor batch = Tensor::randn({2, 3, 8, 8}, data_rng);
  std::memcpy(plan.input(), batch.data(), sizeof(float) * static_cast<std::size_t>(batch.numel()));
  Tensor fused_out;
  plan.run(2, fused_out);
  const Tensor eager_out = net.forward(batch);
  ASSERT_EQ(fused_out.shape(), eager_out.shape());
  for (std::int64_t i = 0; i < fused_out.numel(); ++i) EXPECT_EQ(fused_out[i], eager_out[i]);
}

TEST(CompiledPlan, ResidualBranchShapeMismatchThrowsAtCompile) {
  using namespace clado::nn;
  Rng rng(181);
  Sequential net;
  net.emplace_named<Conv2d>("stem", 3, 4, 3, 1, 1)->init(rng);
  auto main = std::make_unique<Sequential>();
  // stride 2 halves the spatial dims, so the identity add cannot line up.
  main->emplace_named<Conv2d>("conv", 4, 4, 3, 2, 1)->init(rng);
  net.emplace_named<ResidualBlock>("bad_block", std::move(main), nullptr);
  net.set_inference(true);
  EXPECT_THROW(clado::serve::CompiledPlan(net, {3, 8, 8}, 1), std::invalid_argument);
}

TEST(CompiledPlan, OversizedBatchFallsBackToEager) {
  EnginePair pair = make_geometry_pair(/*max_batch=*/2);
  Rng rng(141);
  const Tensor batch = Tensor::randn({4, 3, 16, 16}, rng);  // > max_batch
  const Tensor a = pair.fused->infer(batch);
  const Tensor b = pair.eager->infer(batch);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
