#include <gtest/gtest.h>

#include <cmath>

#include "clado/linalg/cholesky.h"
#include "clado/linalg/eigen.h"
#include "clado/linalg/matrix.h"
#include "clado/tensor/ops.h"

namespace clado::linalg {
namespace {

using clado::tensor::Rng;
using clado::tensor::Tensor;

Tensor random_symmetric(std::int64_t n, Rng& rng) {
  Tensor a = Tensor::randn({n, n}, rng);
  return symmetrize(a);
}

Tensor random_psd(std::int64_t n, Rng& rng) {
  // A Aᵀ is PSD by construction.
  const Tensor a = Tensor::randn({n, n}, rng);
  Tensor out({n, n});
  clado::tensor::gemm(false, true, n, n, n, 1.0F, a.data(), a.data(), 0.0F, out.data());
  return symmetrize(out);
}

TEST(Matrix, SymmetrizeAndDefect) {
  Tensor a({2, 2}, std::vector<float>{1, 2, 4, 3});
  EXPECT_FLOAT_EQ(symmetry_defect(a), 2.0F);
  const Tensor s = symmetrize(a);
  EXPECT_FLOAT_EQ(symmetry_defect(s), 0.0F);
  EXPECT_FLOAT_EQ(s.at({0, 1}), 3.0F);
  EXPECT_FLOAT_EQ(s.at({1, 0}), 3.0F);
}

TEST(Matrix, QuadFormMatchesHandComputation) {
  Tensor a({2, 2}, std::vector<float>{2, 1, 1, 3});
  std::vector<float> x = {1.0F, -2.0F};
  // xᵀAx = 2·1 + 1·(−2) + 1·(−2) + 3·4 = 10
  EXPECT_DOUBLE_EQ(quad_form(a, x), 10.0);
}

TEST(Matrix, MatvecMatchesMatmul) {
  Rng rng(3);
  const Tensor a = Tensor::randn({5, 5}, rng);
  const Tensor x = Tensor::randn({5}, rng);
  std::vector<float> y(5);
  matvec(a, x.flat(), y);
  for (std::int64_t i = 0; i < 5; ++i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < 5; ++j) acc += static_cast<double>(a.at({i, j})) * x[j];
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], acc, 1e-5);
  }
}

TEST(Eigen, DiagonalMatrixEigenvalues) {
  Tensor a({3, 3});
  a.at({0, 0}) = 3.0F;
  a.at({1, 1}) = -1.0F;
  a.at({2, 2}) = 2.0F;
  const EigenResult eig = sym_eigen(a);
  EXPECT_NEAR(eig.eigenvalues[0], -1.0, 1e-6);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-6);
  EXPECT_NEAR(eig.eigenvalues[2], 3.0, 1e-6);
}

TEST(Eigen, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  Tensor a({2, 2}, std::vector<float>{2, 1, 1, 2});
  const EigenResult eig = sym_eigen(a);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-6);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-6);
}

TEST(Eigen, ReconstructionAndOrthogonality) {
  Rng rng(7);
  const std::int64_t n = 24;
  const Tensor a = random_symmetric(n, rng);
  const EigenResult eig = sym_eigen(a);

  // V diag(e) Vᵀ must reconstruct A.
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = i; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < n; ++k) {
        acc += static_cast<double>(eig.eigenvectors.at({i, k})) * eig.eigenvalues[k] *
               eig.eigenvectors.at({j, k});
      }
      EXPECT_NEAR(acc, a.at({i, j}), 1e-4) << i << "," << j;
    }
  }
  // Columns are orthonormal.
  for (std::int64_t c1 = 0; c1 < n; ++c1) {
    for (std::int64_t c2 = c1; c2 < n; ++c2) {
      double acc = 0.0;
      for (std::int64_t r = 0; r < n; ++r) {
        acc += static_cast<double>(eig.eigenvectors.at({r, c1})) * eig.eigenvectors.at({r, c2});
      }
      EXPECT_NEAR(acc, c1 == c2 ? 1.0 : 0.0, 1e-6);
    }
  }
}

TEST(Eigen, EigenvaluesAscending) {
  Rng rng(9);
  const EigenResult eig = sym_eigen(random_symmetric(16, rng));
  for (std::int64_t k = 1; k < 16; ++k) {
    EXPECT_LE(eig.eigenvalues[k - 1], eig.eigenvalues[k]);
  }
}

TEST(Psd, ProjectionOfPsdMatrixIsIdentityOp) {
  Rng rng(11);
  const Tensor a = random_psd(10, rng);
  const Tensor p = psd_projection(a);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(p[i], a[i], 1e-3 * std::max(1.0, std::abs(static_cast<double>(a[i]))));
  }
}

TEST(Psd, ProjectionClampsNegativeEigenvalues) {
  Rng rng(13);
  const Tensor a = random_symmetric(12, rng);
  ASSERT_LT(min_eigenvalue(a), 0.0);  // random symmetric: essentially certain
  const Tensor p = psd_projection(a);
  EXPECT_GT(min_eigenvalue(p), -1e-4);
}

TEST(Psd, ProjectionIsIdempotent) {
  Rng rng(17);
  const Tensor a = random_symmetric(8, rng);
  const Tensor p1 = psd_projection(a);
  const Tensor p2 = psd_projection(p1);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_NEAR(p1[i], p2[i], 1e-4);
}

TEST(Psd, QuadraticFormNonNegativeAfterProjection) {
  Rng rng(19);
  const Tensor p = psd_projection(random_symmetric(15, rng));
  for (int trial = 0; trial < 20; ++trial) {
    const Tensor x = Tensor::randn({15}, rng);
    EXPECT_GE(quad_form(p, x.flat()), -1e-4);
  }
}

TEST(Cholesky, FactorizesAndSolves) {
  Rng rng(23);
  const std::int64_t n = 9;
  Tensor a = random_psd(n, rng);
  for (std::int64_t i = 0; i < n; ++i) a.at({i, i}) += 1.0F;  // make PD
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  // L Lᵀ == A.
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k <= j; ++k) {
        acc += static_cast<double>(l->at({i, k})) * l->at({j, k});
      }
      EXPECT_NEAR(acc, a.at({i, j}), 1e-3);
    }
  }
  const Tensor b = Tensor::randn({n}, rng);
  const Tensor x = cholesky_solve(*l, b);
  std::vector<float> ax(static_cast<std::size_t>(n));
  matvec(a, x.flat(), ax);
  for (std::int64_t i = 0; i < n; ++i) EXPECT_NEAR(ax[static_cast<std::size_t>(i)], b[i], 1e-3);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Tensor a({2, 2}, std::vector<float>{1, 2, 2, 1});  // eigenvalues 3, −1
  EXPECT_FALSE(cholesky(a).has_value());
}

TEST(Cholesky, CertifiesPsdProjection) {
  // After projection + small jitter the matrix must admit a Cholesky
  // factorization — the certificate the IQP solver relies on.
  Rng rng(29);
  const Tensor p = psd_projection(random_symmetric(20, rng));
  EXPECT_TRUE(cholesky(p, /*jitter=*/1e-4).has_value());
}

}  // namespace
}  // namespace clado::linalg
