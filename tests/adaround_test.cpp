#include "clado/quant/adaround.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "clado/nn/layers.h"
#include "clado/quant/quantizer.h"

namespace clado::quant {
namespace {

using clado::nn::Conv2d;
using clado::nn::Linear;
using clado::nn::Tensor;
using clado::tensor::Rng;

TEST(AdaRound, OutputOnQuantizationGrid) {
  Rng rng(1);
  Linear fc(8, 6, /*bias=*/false);
  fc.init(rng);
  const Tensor x = Tensor::randn({32, 8}, rng);
  const auto res = adaround_weight(fc, fc, x, 3);

  const float scale = mse_optimal_scale_symmetric(fc.weight_param().value, 3);
  std::set<float> grid;
  for (int q = -4; q <= 3; ++q) grid.insert(static_cast<float>(q) * scale);
  for (float w : res.quantized.flat()) {
    bool on_grid = false;
    for (float g : grid) {
      if (std::abs(w - g) < 1e-5F) on_grid = true;
    }
    EXPECT_TRUE(on_grid) << w;
  }
}

TEST(AdaRound, NeverWorseThanNearestOnCalibrationData) {
  // The defining property: layer-output MSE of the learned rounding is at
  // most that of round-to-nearest (on the data it optimized).
  Rng rng(2);
  for (int bits : {2, 3, 4}) {
    Linear fc(16, 8, /*bias=*/false);
    fc.init(rng);
    const Tensor x = Tensor::randn({64, 16}, rng);
    const auto res = adaround_weight(fc, fc, x, bits);
    EXPECT_LE(res.mse_adaround, res.mse_nearest * 1.02 + 1e-12) << bits << " bits";
  }
}

TEST(AdaRound, ImprovesAtLowBits) {
  // Against an MSE-calibrated round-to-nearest baseline the headroom is a
  // few percent of output MSE at 2-bit on a layer this small; require a
  // strict, reproducible improvement plus actual rounding flips.
  Rng rng(3);
  Conv2d conv(3, 6, 3, 1, 1, 1, /*bias=*/false);
  conv.init(rng);
  const Tensor x = Tensor::randn({16, 3, 6, 6}, rng);
  const auto res = adaround_weight(conv, conv, x, 2);
  EXPECT_LT(res.mse_adaround, res.mse_nearest * 0.98);
  EXPECT_GT(res.flipped, 0);  // it actually changed some roundings
}

TEST(AdaRound, RestoresWeightsAndGrads) {
  Rng rng(4);
  Linear fc(8, 4, /*bias=*/false);
  fc.init(rng);
  const Tensor before = fc.weight_param().value;
  const Tensor x = Tensor::randn({16, 8}, rng);
  adaround_weight(fc, fc, x, 3);
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_EQ(fc.weight_param().value[i], before[i]);
  }
  for (float g : fc.weight_param().grad.flat()) EXPECT_EQ(g, 0.0F);
}

TEST(AdaRound, DeterministicGivenInputs) {
  Rng rng(5);
  Linear fc(8, 4, /*bias=*/false);
  fc.init(rng);
  const Tensor x = Tensor::randn({16, 8}, rng);
  const auto a = adaround_weight(fc, fc, x, 3);
  const auto b = adaround_weight(fc, fc, x, 3);
  for (std::int64_t i = 0; i < a.quantized.numel(); ++i) {
    EXPECT_EQ(a.quantized[i], b.quantized[i]);
  }
  EXPECT_DOUBLE_EQ(a.mse_adaround, b.mse_adaround);
}

TEST(AdaRound, WorksOnConvWithBias) {
  // Bias is held fixed; only weight rounding is learned. The result must
  // still be a strict improvement in output MSE.
  Rng rng(6);
  Conv2d conv(2, 4, 3, 2, 1, 1, /*bias=*/true);
  conv.init(rng);
  std::vector<clado::nn::ParamRef> params;
  conv.collect_params("", params);
  for (auto& v : params[1].param->value.flat()) v = 0.2F;
  const Tensor x = Tensor::randn({8, 2, 6, 6}, rng);
  const auto res = adaround_weight(conv, conv, x, 2);
  EXPECT_LE(res.mse_adaround, res.mse_nearest + 1e-12);
}

}  // namespace
}  // namespace clado::quant
