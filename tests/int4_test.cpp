// Packed s4 storage and the sub-byte kernel seam.
//
// Satellite coverage for the int4 execution path: exhaustive pack/unpack
// round-trips (all 256 byte patterns, both nibble parities, seeded random
// tensors — under ASan this also proves no over-read), the all-negative
// zero-point grid invariants shared by the s8 and s4 ranges, and
// bit-exactness of the three new dispatched kernels (gemm_s8s4_s32,
// quantize_f32_s8, requant_s32_f32) against naive references and across
// kernel levels.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "clado/quant/int4.h"
#include "clado/quant/int8.h"
#include "clado/quant/quantizer.h"
#include "clado/tensor/kernels.h"
#include "clado/tensor/rng.h"
#include "clado/tensor/tensor.h"

namespace {

using clado::quant::pack_s4;
using clado::quant::pack_s4_rows;
using clado::quant::packed_s4_stride;
using clado::quant::unpack_s4;
using clado::tensor::Rng;
using clado::tensor::Tensor;
namespace kernels = clado::tensor::kernels;

// ---- pack/unpack round trips -----------------------------------------------

TEST(Int4Pack, AllByteValuesRoundTripThroughUnpackPack) {
  // Even count: both nibbles carry codes, so pack(unpack(byte)) must
  // reproduce every one of the 256 possible bytes exactly.
  for (int b = 0; b < 256; ++b) {
    const std::uint8_t packed = static_cast<std::uint8_t>(b);
    std::int8_t codes[2];
    unpack_s4(&packed, 2, codes);
    EXPECT_GE(codes[0], -8);
    EXPECT_LE(codes[0], 7);
    EXPECT_GE(codes[1], -8);
    EXPECT_LE(codes[1], 7);
    std::uint8_t repacked = 0xAA;
    pack_s4(codes, 2, &repacked);
    EXPECT_EQ(repacked, packed) << "byte " << b;
  }
}

TEST(Int4Pack, OddCountKeepsLowNibbleAndZeroPads) {
  // Odd count: only the low nibble is a code; the pad high nibble must be
  // written as zero regardless of what unpack saw.
  for (int b = 0; b < 256; ++b) {
    const std::uint8_t packed = static_cast<std::uint8_t>(b);
    std::int8_t code = 0;
    unpack_s4(&packed, 1, &code);
    std::uint8_t repacked = 0xFF;
    pack_s4(&code, 1, &repacked);
    EXPECT_EQ(repacked, static_cast<std::uint8_t>(b & 0x0F)) << "byte " << b;
  }
}

TEST(Int4Pack, AllCodePairsRoundTripThroughPackUnpack) {
  for (int lo = -8; lo <= 7; ++lo) {
    for (int hi = -8; hi <= 7; ++hi) {
      const std::int8_t codes[2] = {static_cast<std::int8_t>(lo), static_cast<std::int8_t>(hi)};
      std::uint8_t packed = 0;
      pack_s4(codes, 2, &packed);
      std::int8_t back[2] = {99, 99};
      unpack_s4(&packed, 2, back);
      EXPECT_EQ(back[0], codes[0]);
      EXPECT_EQ(back[1], codes[1]);
    }
  }
}

TEST(Int4Pack, SeededRandomTensorsRoundTripAtEveryParity) {
  Rng rng(41);
  for (const std::int64_t count : {1, 2, 3, 7, 8, 31, 32, 33, 255, 256, 1023}) {
    std::vector<std::int8_t> codes(static_cast<std::size_t>(count));
    for (auto& c : codes) {
      c = static_cast<std::int8_t>(static_cast<std::int64_t>(rng.uniform_int(16)) - 8);
    }
    const std::vector<std::uint8_t> packed = pack_s4(codes);
    ASSERT_EQ(static_cast<std::int64_t>(packed.size()), packed_s4_stride(count));
    const std::vector<std::int8_t> back = unpack_s4(packed, count);
    ASSERT_EQ(back.size(), codes.size());
    for (std::size_t i = 0; i < codes.size(); ++i) {
      ASSERT_EQ(back[i], codes[i]) << "count " << count << " index " << i;
    }
  }
}

TEST(Int4Pack, RejectsOutOfRangeCodes) {
  for (const int bad : {-9, 8, 127, -128}) {
    const std::int8_t codes[2] = {0, static_cast<std::int8_t>(bad)};
    std::uint8_t packed = 0;
    EXPECT_THROW(pack_s4(codes, 2, &packed), std::invalid_argument) << bad;
  }
}

TEST(Int4Pack, VectorUnpackRejectsShortBuffer) {
  const std::vector<std::uint8_t> packed(2);  // room for 4 codes
  EXPECT_THROW(unpack_s4(packed, 5), std::invalid_argument);
  EXPECT_NO_THROW(unpack_s4(packed, 4));
  EXPECT_NO_THROW(unpack_s4(packed, 3));
}

TEST(Int4Pack, RowPackUsesPerRowStride) {
  // k odd: each row pads independently, so row r starts at r * (k+1)/2.
  const std::int64_t n = 3, k = 5;
  std::vector<std::int8_t> codes(static_cast<std::size_t>(n * k));
  for (std::int64_t i = 0; i < n * k; ++i) {
    codes[static_cast<std::size_t>(i)] = static_cast<std::int8_t>((i % 16) - 8);
  }
  const std::vector<std::uint8_t> packed = pack_s4_rows(codes.data(), n, k);
  ASSERT_EQ(static_cast<std::int64_t>(packed.size()), n * packed_s4_stride(k));
  for (std::int64_t r = 0; r < n; ++r) {
    const std::vector<std::int8_t> row =
        unpack_s4(std::vector<std::uint8_t>(
                      packed.begin() + r * packed_s4_stride(k),
                      packed.begin() + (r + 1) * packed_s4_stride(k)),
                  k);
    for (std::int64_t j = 0; j < k; ++j) {
      EXPECT_EQ(row[static_cast<std::size_t>(j)], codes[static_cast<std::size_t>(r * k + j)]);
    }
  }
}

// ---- zero-point grid invariants (all-negative ranges) ----------------------

TEST(QParams, AllNegativeRangeKeepsZeroPointOnSignedInt8Grid) {
  // An all-negative range drives the pre-clamp zero point to its positive
  // extreme; the clamp must leave it on the grid so the im2col padding code
  // (a literal int8 cast) still encodes "real 0".
  for (const auto& [lo, hi] : {std::pair<float, float>{-3.7F, -0.5F},
                              {-1e6F, -10.0F},
                              {-0.25F, -0.125F}}) {
    const clado::quant::QParams p = clado::quant::choose_qparams(lo, hi);
    EXPECT_GE(p.zero_point, -128);
    EXPECT_LE(p.zero_point, 127);
    // Real 0 maps onto an exactly representable code.
    const float zero_code = std::nearbyint(0.0F / p.scale) + static_cast<float>(p.zero_point);
    EXPECT_EQ(zero_code, static_cast<float>(p.zero_point));
  }
}

TEST(QParams, AllNegativeTensorQuantizesWithoutLeavingGrid) {
  Rng rng(7);
  Tensor x = Tensor::randn({64}, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = -std::abs(x[i]) - 0.5F;
  const clado::quant::QTensor q = clado::quant::quantize_int8_minmax(x);
  // Dequantized values must be finite and the codes saturating-clamped.
  const Tensor back = clado::quant::dequantize(q);
  for (std::int64_t i = 0; i < back.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(back[i]));
    EXPECT_LE(back[i], 0.0F + q.scale);  // within one step of the range
  }
}

TEST(QParams, AffineQParamsHoldsGridInvariantAtS4Range) {
  // The same invariant at the 4-bit range (satellite regression alongside
  // the int4 path): zero point integral and inside [0, 15].
  for (const auto& [lo, hi] : {std::pair<float, float>{-3.7F, -0.5F},
                              {-100.0F, -1.0F},
                              {0.5F, 3.0F},
                              {-2.0F, 2.0F}}) {
    const clado::quant::AffineQParams p = clado::quant::affine_qparams(lo, hi, 4);
    EXPECT_EQ(p.zero_point, std::nearbyint(p.zero_point));
    EXPECT_GE(p.zero_point, 0.0F);
    EXPECT_LE(p.zero_point, 15.0F);
    EXPECT_GT(p.scale, 0.0F);
  }
}

// ---- gemm_s8s4_s32 ----------------------------------------------------------

void fill_random_s8(Rng& rng, std::vector<std::int8_t>& v, int span, int offset) {
  for (auto& x : v) {
    x = static_cast<std::int8_t>(static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(span))) +
                                 offset);
  }
}

/// Naive four-loop reference: c[i,j] = sum_p (a[i,p]-za)(b[j,p]-zb) with b
/// stored as unpacked s4 codes.
std::vector<std::int32_t> naive_s8s4(std::int64_t m, std::int64_t n, std::int64_t k,
                                     const std::vector<std::int8_t>& a, std::int32_t za,
                                     const std::vector<std::int8_t>& codes, std::int32_t zb) {
  std::vector<std::int32_t> c(static_cast<std::size_t>(m * n), 0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += (static_cast<std::int32_t>(a[static_cast<std::size_t>(i * k + p)]) - za) *
               (static_cast<std::int32_t>(codes[static_cast<std::size_t>(j * k + p)]) - zb);
      }
      c[static_cast<std::size_t>(i * n + j)] = static_cast<std::int32_t>(acc);
    }
  }
  return c;
}

TEST(GemmS8S4, ScalarMatchesNaiveReference) {
  Rng rng(11);
  for (const auto& [m, n, k] : {std::tuple<int, int, int>{1, 1, 1},
                               {2, 3, 5},
                               {4, 4, 32},
                               {3, 7, 33},
                               {5, 6, 64},
                               {2, 9, 95}}) {
    std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
    std::vector<std::int8_t> codes(static_cast<std::size_t>(n * k));
    fill_random_s8(rng, a, 256, -128);
    fill_random_s8(rng, codes, 16, -8);
    const std::int32_t za = static_cast<std::int32_t>(rng.uniform_int(256)) - 128;
    const std::int32_t zb = 0;  // weights are symmetric in the backend
    const std::vector<std::uint8_t> packed = pack_s4_rows(codes.data(), n, k);

    std::vector<std::int32_t> got(static_cast<std::size_t>(m * n), -1);
    kernels::gemm_s8s4_s32(kernels::Level::kScalar, m, n, k, a.data(), za, packed.data(), zb,
                           got.data());
    const auto want = naive_s8s4(m, n, k, a, za, codes, zb);
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "m=" << m << " n=" << n << " k=" << k << " idx " << i;
    }
  }
}

TEST(GemmS8S4, Avx2BitExactAgainstScalar) {
  if (!kernels::cpu_supports_avx2()) GTEST_SKIP() << "no AVX2 on this host/build";
  Rng rng(13);
  // Sizes straddle the 32-wide vector body, the 4-column tile, and odd-k
  // packing (pad nibble exercised).
  for (const auto& [m, n, k] : {std::tuple<int, int, int>{1, 1, 31},
                               {2, 5, 32},
                               {3, 4, 33},
                               {7, 9, 64},
                               {4, 3, 97},
                               {6, 11, 128}}) {
    std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
    std::vector<std::int8_t> codes(static_cast<std::size_t>(n * k));
    fill_random_s8(rng, a, 256, -128);
    fill_random_s8(rng, codes, 16, -8);
    const std::int32_t za = static_cast<std::int32_t>(rng.uniform_int(256)) - 128;
    const std::vector<std::uint8_t> packed = pack_s4_rows(codes.data(), n, k);

    std::vector<std::int32_t> scalar(static_cast<std::size_t>(m * n), 0);
    std::vector<std::int32_t> avx2(static_cast<std::size_t>(m * n), 0);
    kernels::gemm_s8s4_s32(kernels::Level::kScalar, m, n, k, a.data(), za, packed.data(), 0,
                           scalar.data());
    kernels::gemm_s8s4_s32(kernels::Level::kAvx2, m, n, k, a.data(), za, packed.data(), 0,
                           avx2.data());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      ASSERT_EQ(scalar[i], avx2[i]) << "m=" << m << " n=" << n << " k=" << k << " idx " << i;
    }
  }
}

// ---- quantize_f32_s8 / requant_s32_f32 --------------------------------------

TEST(QuantizeKernel, LevelsBitExactIncludingEdgeValues) {
  if (!kernels::cpu_supports_avx2()) GTEST_SKIP() << "no AVX2 on this host/build";
  Rng rng(17);
  for (const std::int64_t count : {1, 7, 8, 9, 64, 257}) {
    Tensor x = Tensor::randn({count}, rng);
    // Salt in values that stress rounding ties, saturation and huge
    // magnitudes (the float-domain clamp path).
    x[0] = 0.5F;
    if (count > 2) x[1] = -3.5e8F;
    if (count > 3) x[2] = 3.99e9F;
    if (count > 4) x[3] = -2.5F;
    const float inv = 3.17F;
    const std::int32_t zp = -7;
    std::vector<std::int8_t> scalar(static_cast<std::size_t>(count), 0);
    std::vector<std::int8_t> avx2(static_cast<std::size_t>(count), 0);
    kernels::quantize_f32_s8(kernels::Level::kScalar, count, x.data(), inv, zp, scalar.data());
    kernels::quantize_f32_s8(kernels::Level::kAvx2, count, x.data(), inv, zp, avx2.data());
    for (std::int64_t i = 0; i < count; ++i) {
      ASSERT_EQ(scalar[static_cast<std::size_t>(i)], avx2[static_cast<std::size_t>(i)])
          << "count " << count << " idx " << i << " x=" << x[i];
    }
  }
}

TEST(RequantKernel, LevelsBitExactWithAndWithoutBias) {
  if (!kernels::cpu_supports_avx2()) GTEST_SKIP() << "no AVX2 on this host/build";
  Rng rng(19);
  for (const auto& [rows, n] : {std::pair<int, int>{1, 1}, {3, 7}, {2, 8}, {5, 19}}) {
    std::vector<std::int32_t> acc(static_cast<std::size_t>(rows * n));
    for (auto& v : acc) v = static_cast<std::int32_t>(rng.uniform_int(2000001)) - 1000000;
    std::vector<float> bias(static_cast<std::size_t>(n));
    for (auto& b : bias) b = static_cast<float>(static_cast<double>(rng.uniform_int(100)) / 7.0 - 5.0);
    const float rescale = 0.0123F;
    const float* bias_cases[2] = {nullptr, bias.data()};
    for (const float* bp : bias_cases) {
      std::vector<float> scalar(static_cast<std::size_t>(rows * n), 0.0F);
      std::vector<float> avx2(static_cast<std::size_t>(rows * n), 0.0F);
      kernels::requant_s32_f32(kernels::Level::kScalar, rows, n, acc.data(), rescale, bp,
                               scalar.data());
      kernels::requant_s32_f32(kernels::Level::kAvx2, rows, n, acc.data(), rescale, bp,
                               avx2.data());
      for (std::size_t i = 0; i < scalar.size(); ++i) {
        ASSERT_EQ(scalar[i], avx2[i]) << "rows=" << rows << " n=" << n << " bias=" << (bp != nullptr);
      }
    }
  }
}

TEST(QuantizeKernel, MatchesQuantizeInt8Reference) {
  // quantize_int8 now routes through the kernel; pin the arithmetic to the
  // historical definition so a kernel regression cannot drift it.
  Rng rng(23);
  const Tensor x = Tensor::randn({129}, rng);
  const clado::quant::QParams p = clado::quant::choose_qparams(x.min(), x.max());
  const clado::quant::QTensor q = clado::quant::quantize_int8(x, p);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float v = std::nearbyint(x[i] / p.scale) + static_cast<float>(p.zero_point);
    const float want = std::min(127.0F, std::max(-128.0F, v));
    ASSERT_EQ(static_cast<float>(q.data[static_cast<std::size_t>(i)]), want) << i;
  }
}

}  // namespace
