#include "clado/solver/mckp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "clado/tensor/rng.h"

namespace clado::solver {
namespace {

using clado::tensor::Rng;

std::vector<ChoiceGroup> random_instance(std::size_t groups, std::size_t choices, Rng& rng) {
  std::vector<ChoiceGroup> out(groups);
  for (auto& g : out) {
    for (std::size_t m = 0; m < choices; ++m) {
      g.value.push_back(rng.uniform(-1.0, 1.0));
      g.cost.push_back(rng.uniform(0.1, 2.0));
    }
  }
  return out;
}

double min_total_cost(const std::vector<ChoiceGroup>& groups) {
  double c = 0.0;
  for (const auto& g : groups) c += *std::min_element(g.cost.begin(), g.cost.end());
  return c;
}

TEST(MckpDp, TrivialSingleGroup) {
  std::vector<ChoiceGroup> groups = {{{5.0, 1.0, 3.0}, {1.0, 2.0, 3.0}}};
  const auto sol = solve_mckp_dp(groups, 10.0);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.choice[0], 1);  // min value fits
  EXPECT_DOUBLE_EQ(sol.value, 1.0);
}

TEST(MckpDp, BudgetForcesCheapChoice) {
  std::vector<ChoiceGroup> groups = {{{5.0, 1.0}, {1.0, 10.0}}};
  const auto sol = solve_mckp_dp(groups, 5.0);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.choice[0], 0);  // the good choice is too expensive
}

TEST(MckpDp, InfeasibleWhenCheapestExceedsBudget) {
  std::vector<ChoiceGroup> groups = {{{1.0, 2.0}, {5.0, 6.0}}};
  EXPECT_FALSE(solve_mckp_dp(groups, 4.0).feasible);
}

TEST(MckpDp, MatchesBruteForceOnRandomInstances) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const auto groups = random_instance(6, 3, rng);
    const double budget = min_total_cost(groups) * rng.uniform(1.05, 2.0);
    const auto dp = solve_mckp_dp(groups, budget, 8192);
    const auto bf = solve_mckp_brute_force(groups, budget);
    ASSERT_EQ(dp.feasible, bf.feasible) << "trial " << trial;
    if (bf.feasible) {
      EXPECT_LE(dp.cost, budget + 1e-9);
      // DP on a fine grid should match the exact optimum closely.
      EXPECT_NEAR(dp.value, bf.value, 1e-6 + 0.02 * std::abs(bf.value)) << "trial " << trial;
    }
  }
}

TEST(MckpDp, SolutionsAlwaysFeasible) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto groups = random_instance(10, 4, rng);
    const double budget = min_total_cost(groups) * rng.uniform(1.0, 3.0);
    const auto sol = solve_mckp_dp(groups, budget, 512);  // coarse grid
    if (sol.feasible) {
      double cost = 0.0;
      for (std::size_t g = 0; g < groups.size(); ++g) {
        cost += groups[g].cost[static_cast<std::size_t>(sol.choice[g])];
      }
      EXPECT_LE(cost, budget + 1e-9) << "trial " << trial;
    }
  }
}

TEST(MckpLp, LowerBoundsIntegerOptimum) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const auto groups = random_instance(5, 3, rng);
    const double budget = min_total_cost(groups) * rng.uniform(1.05, 2.0);
    const auto lp = solve_mckp_lp(groups, budget);
    const auto bf = solve_mckp_brute_force(groups, budget);
    ASSERT_EQ(lp.feasible, bf.feasible);
    if (bf.feasible) {
      EXPECT_LE(lp.value, bf.value + 1e-9) << "trial " << trial;
    }
  }
}

TEST(MckpLp, WeightsAreASimplexPoint) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const auto groups = random_instance(6, 4, rng);
    const double budget = min_total_cost(groups) * 1.3;
    const auto lp = solve_mckp_lp(groups, budget);
    if (!lp.feasible) continue;
    int fractional_groups = 0;
    double cost = 0.0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      double sum = 0.0;
      bool fractional = false;
      for (std::size_t m = 0; m < groups[g].value.size(); ++m) {
        const double w = lp.weight[g][m];
        EXPECT_GE(w, -1e-12);
        if (w > 1e-9 && w < 1.0 - 1e-9) fractional = true;
        sum += w;
        cost += w * groups[g].cost[m];
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
      if (fractional) ++fractional_groups;
    }
    EXPECT_LE(fractional_groups, 1);  // Sinha–Zoltners structure
    EXPECT_LE(cost, budget + 1e-6);
  }
}

TEST(MckpLp, UnconstrainedOptimumShortcut) {
  std::vector<ChoiceGroup> groups = {{{3.0, 1.0}, {1.0, 1.0}}, {{2.0, 5.0}, {1.0, 1.0}}};
  const auto lp = solve_mckp_lp(groups, 100.0);
  ASSERT_TRUE(lp.feasible);
  EXPECT_DOUBLE_EQ(lp.weight[0][1], 1.0);
  EXPECT_DOUBLE_EQ(lp.weight[1][0], 1.0);
  EXPECT_DOUBLE_EQ(lp.value, 3.0);
}

TEST(MckpLp, RespectsAllowedMask) {
  std::vector<ChoiceGroup> groups = {{{0.0, 10.0}, {1.0, 1.0}}};
  std::vector<std::vector<char>> allowed = {{0, 1}};  // forbid the good choice
  const auto lp = solve_mckp_lp(groups, 100.0, allowed);
  ASSERT_TRUE(lp.feasible);
  EXPECT_DOUBLE_EQ(lp.weight[0][1], 1.0);
}

TEST(MckpLp, FullyMaskedGroupIsInfeasible) {
  std::vector<ChoiceGroup> groups = {{{0.0, 1.0}, {1.0, 1.0}}};
  std::vector<std::vector<char>> allowed = {{0, 0}};
  EXPECT_FALSE(solve_mckp_lp(groups, 100.0, allowed).feasible);
}

TEST(MckpGreedy, FeasibleAndNoWorseThanBase) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const auto groups = random_instance(8, 3, rng);
    const double min_cost = min_total_cost(groups);
    const double budget = min_cost * rng.uniform(1.0, 2.5);
    const auto greedy = solve_mckp_greedy(groups, budget);
    ASSERT_TRUE(greedy.feasible);
    double cost = 0.0, base_value = 0.0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      cost += groups[g].cost[static_cast<std::size_t>(greedy.choice[g])];
      // Base = value at each group's cheapest choice.
      std::size_t cheapest = 0;
      for (std::size_t m = 1; m < groups[g].cost.size(); ++m) {
        if (groups[g].cost[m] < groups[g].cost[cheapest]) cheapest = m;
      }
      base_value += groups[g].value[cheapest];
    }
    EXPECT_LE(cost, budget + 1e-9);
    EXPECT_LE(greedy.value, base_value + 1e-9);
  }
}

TEST(MckpGreedy, NeverBelowLpBound) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const auto groups = random_instance(6, 3, rng);
    const double budget = min_total_cost(groups) * 1.4;
    const auto lp = solve_mckp_lp(groups, budget);
    const auto greedy = solve_mckp_greedy(groups, budget);
    ASSERT_TRUE(lp.feasible);
    ASSERT_TRUE(greedy.feasible);
    EXPECT_GE(greedy.value, lp.value - 1e-9);
  }
}

TEST(Mckp, ValidationErrors) {
  EXPECT_THROW(solve_mckp_dp({{{1.0}, {}}}, 1.0), std::invalid_argument);
  EXPECT_THROW(solve_mckp_dp({{{1.0}, {-0.5}}}, 1.0), std::invalid_argument);
  EXPECT_THROW(solve_mckp_dp({{{1.0}, {0.5}}}, 1.0, 0), std::invalid_argument);
}

TEST(Mckp, NonFiniteValuesAndCostsRejected) {
  // A NaN value breaks the strict weak ordering the hull sort relies on
  // (UB in std::sort); validate() must reject it in every solver.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<ChoiceGroup> nan_value = {{{nan, 1.0}, {1.0, 2.0}}};
  const std::vector<ChoiceGroup> inf_value = {{{inf, 1.0}, {1.0, 2.0}}};
  const std::vector<ChoiceGroup> nan_cost = {{{1.0, 2.0}, {nan, 1.0}}};
  const std::vector<ChoiceGroup> inf_cost = {{{1.0, 2.0}, {inf, 1.0}}};
  for (const auto& groups : {nan_value, inf_value, nan_cost, inf_cost}) {
    EXPECT_THROW(solve_mckp_dp(groups, 10.0), std::invalid_argument);
    EXPECT_THROW(solve_mckp_brute_force(groups, 10.0), std::invalid_argument);
    EXPECT_THROW(solve_mckp_lp(groups, 10.0), std::invalid_argument);
    EXPECT_THROW(solve_mckp_greedy(groups, 10.0), std::invalid_argument);
  }
}

TEST(Mckp, NanBudgetRejected) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<ChoiceGroup> groups = {{{1.0, 2.0}, {1.0, 2.0}}};
  EXPECT_THROW(solve_mckp_dp(groups, nan), std::invalid_argument);
  EXPECT_THROW(solve_mckp_brute_force(groups, nan), std::invalid_argument);
  EXPECT_THROW(solve_mckp_lp(groups, nan), std::invalid_argument);
  EXPECT_THROW(solve_mckp_greedy(groups, nan), std::invalid_argument);
}

TEST(MckpDp, ZeroBudgetWithoutZeroCostChoicesIsInfeasible) {
  // Used to divide by budget when sizing the DP grid: budget = 0 made the
  // cell size 0, ceil(cost / 0) = inf, and the int cast of inf is UB.
  const std::vector<ChoiceGroup> groups = {{{1.0, 2.0}, {0.5, 1.0}}};
  EXPECT_FALSE(solve_mckp_dp(groups, 0.0).feasible);
  EXPECT_FALSE(solve_mckp_dp(groups, -3.0).feasible);
}

TEST(MckpDp, ZeroBudgetPicksBestZeroCostChoices) {
  const std::vector<ChoiceGroup> groups = {
      {{4.0, 1.0, 2.0}, {0.0, 0.0, 1.0}},  // two free choices: best is index 1
      {{7.0, 3.0}, {0.0, 0.0}},            // all free: best is index 1
  };
  const auto sol = solve_mckp_dp(groups, 0.0);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.choice[0], 1);
  EXPECT_EQ(sol.choice[1], 1);
  EXPECT_DOUBLE_EQ(sol.value, 4.0);
  EXPECT_DOUBLE_EQ(sol.cost, 0.0);
  // One group with no free choice makes the whole instance infeasible.
  auto mixed = groups;
  mixed.push_back({{1.0}, {0.25}});
  EXPECT_FALSE(solve_mckp_dp(mixed, 0.0).feasible);
}

TEST(Mckp, TieCostGroupsAgreeWithBruteForce) {
  // Equal costs inside a group exercise the hull construction's dominance
  // tie-breaking: only the best-value choice per cost should survive.
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ChoiceGroup> groups(5);
    for (auto& g : groups) {
      const double c = rng.uniform(0.5, 1.5);
      for (int m = 0; m < 3; ++m) {
        g.value.push_back(rng.uniform(-1.0, 1.0));
        g.cost.push_back(c);  // every choice in the group costs the same
      }
    }
    const double budget = min_total_cost(groups) * rng.uniform(1.0, 1.5);
    const auto bf = solve_mckp_brute_force(groups, budget);
    const auto lp = solve_mckp_lp(groups, budget);
    const auto greedy = solve_mckp_greedy(groups, budget);
    ASSERT_TRUE(bf.feasible) << "trial " << trial;
    ASSERT_TRUE(greedy.feasible) << "trial " << trial;
    // With uniform in-group costs the budget never binds past the base
    // solution, so every solver should find the exact optimum.
    EXPECT_LE(lp.value, bf.value + 1e-9) << "trial " << trial;
    EXPECT_NEAR(greedy.value, bf.value, 1e-9) << "trial " << trial;
    EXPECT_LE(greedy.cost, budget + 1e-9) << "trial " << trial;
  }
}

TEST(Mckp, SingleChoiceGroupsAgreeWithBruteForce) {
  // Degenerate groups (one choice each) leave no decisions; every solver
  // must return the same forced assignment or agree it is infeasible.
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ChoiceGroup> groups(6);
    for (auto& g : groups) {
      g.value.push_back(rng.uniform(-1.0, 1.0));
      g.cost.push_back(rng.uniform(0.1, 2.0));
    }
    // Clearly feasible or clearly infeasible budgets: the narrow band just
    // above the forced cost is where the DP's conservative cost rounding
    // may legitimately disagree with brute force on feasibility.
    const double ratio = (trial % 2 == 0) ? rng.uniform(1.05, 1.3) : rng.uniform(0.5, 0.95);
    const double budget = min_total_cost(groups) * ratio;
    const auto bf = solve_mckp_brute_force(groups, budget);
    const auto dp = solve_mckp_dp(groups, budget, 8192);
    const auto lp = solve_mckp_lp(groups, budget);
    const auto greedy = solve_mckp_greedy(groups, budget);
    EXPECT_EQ(dp.feasible, bf.feasible) << "trial " << trial;
    EXPECT_EQ(lp.feasible, bf.feasible) << "trial " << trial;
    EXPECT_EQ(greedy.feasible, bf.feasible) << "trial " << trial;
    if (bf.feasible) {
      EXPECT_NEAR(dp.value, bf.value, 1e-9) << "trial " << trial;
      EXPECT_NEAR(lp.value, bf.value, 1e-9) << "trial " << trial;
      EXPECT_NEAR(greedy.value, bf.value, 1e-9) << "trial " << trial;
    }
  }
}

TEST(Mckp, EmptyInstanceIsTriviallyFeasible) {
  const auto sol = solve_mckp_dp({}, 1.0);
  EXPECT_TRUE(sol.feasible);
  EXPECT_TRUE(sol.choice.empty());
}

}  // namespace
}  // namespace clado::solver
