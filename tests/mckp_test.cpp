#include "clado/solver/mckp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "clado/tensor/rng.h"

namespace clado::solver {
namespace {

using clado::tensor::Rng;

std::vector<ChoiceGroup> random_instance(std::size_t groups, std::size_t choices, Rng& rng) {
  std::vector<ChoiceGroup> out(groups);
  for (auto& g : out) {
    for (std::size_t m = 0; m < choices; ++m) {
      g.value.push_back(rng.uniform(-1.0, 1.0));
      g.cost.push_back(rng.uniform(0.1, 2.0));
    }
  }
  return out;
}

double min_total_cost(const std::vector<ChoiceGroup>& groups) {
  double c = 0.0;
  for (const auto& g : groups) c += *std::min_element(g.cost.begin(), g.cost.end());
  return c;
}

TEST(MckpDp, TrivialSingleGroup) {
  std::vector<ChoiceGroup> groups = {{{5.0, 1.0, 3.0}, {1.0, 2.0, 3.0}}};
  const auto sol = solve_mckp_dp(groups, 10.0);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.choice[0], 1);  // min value fits
  EXPECT_DOUBLE_EQ(sol.value, 1.0);
}

TEST(MckpDp, BudgetForcesCheapChoice) {
  std::vector<ChoiceGroup> groups = {{{5.0, 1.0}, {1.0, 10.0}}};
  const auto sol = solve_mckp_dp(groups, 5.0);
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.choice[0], 0);  // the good choice is too expensive
}

TEST(MckpDp, InfeasibleWhenCheapestExceedsBudget) {
  std::vector<ChoiceGroup> groups = {{{1.0, 2.0}, {5.0, 6.0}}};
  EXPECT_FALSE(solve_mckp_dp(groups, 4.0).feasible);
}

TEST(MckpDp, MatchesBruteForceOnRandomInstances) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const auto groups = random_instance(6, 3, rng);
    const double budget = min_total_cost(groups) * rng.uniform(1.05, 2.0);
    const auto dp = solve_mckp_dp(groups, budget, 8192);
    const auto bf = solve_mckp_brute_force(groups, budget);
    ASSERT_EQ(dp.feasible, bf.feasible) << "trial " << trial;
    if (bf.feasible) {
      EXPECT_LE(dp.cost, budget + 1e-9);
      // DP on a fine grid should match the exact optimum closely.
      EXPECT_NEAR(dp.value, bf.value, 1e-6 + 0.02 * std::abs(bf.value)) << "trial " << trial;
    }
  }
}

TEST(MckpDp, SolutionsAlwaysFeasible) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto groups = random_instance(10, 4, rng);
    const double budget = min_total_cost(groups) * rng.uniform(1.0, 3.0);
    const auto sol = solve_mckp_dp(groups, budget, 512);  // coarse grid
    if (sol.feasible) {
      double cost = 0.0;
      for (std::size_t g = 0; g < groups.size(); ++g) {
        cost += groups[g].cost[static_cast<std::size_t>(sol.choice[g])];
      }
      EXPECT_LE(cost, budget + 1e-9) << "trial " << trial;
    }
  }
}

TEST(MckpLp, LowerBoundsIntegerOptimum) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const auto groups = random_instance(5, 3, rng);
    const double budget = min_total_cost(groups) * rng.uniform(1.05, 2.0);
    const auto lp = solve_mckp_lp(groups, budget);
    const auto bf = solve_mckp_brute_force(groups, budget);
    ASSERT_EQ(lp.feasible, bf.feasible);
    if (bf.feasible) {
      EXPECT_LE(lp.value, bf.value + 1e-9) << "trial " << trial;
    }
  }
}

TEST(MckpLp, WeightsAreASimplexPoint) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const auto groups = random_instance(6, 4, rng);
    const double budget = min_total_cost(groups) * 1.3;
    const auto lp = solve_mckp_lp(groups, budget);
    if (!lp.feasible) continue;
    int fractional_groups = 0;
    double cost = 0.0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      double sum = 0.0;
      bool fractional = false;
      for (std::size_t m = 0; m < groups[g].value.size(); ++m) {
        const double w = lp.weight[g][m];
        EXPECT_GE(w, -1e-12);
        if (w > 1e-9 && w < 1.0 - 1e-9) fractional = true;
        sum += w;
        cost += w * groups[g].cost[m];
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
      if (fractional) ++fractional_groups;
    }
    EXPECT_LE(fractional_groups, 1);  // Sinha–Zoltners structure
    EXPECT_LE(cost, budget + 1e-6);
  }
}

TEST(MckpLp, UnconstrainedOptimumShortcut) {
  std::vector<ChoiceGroup> groups = {{{3.0, 1.0}, {1.0, 1.0}}, {{2.0, 5.0}, {1.0, 1.0}}};
  const auto lp = solve_mckp_lp(groups, 100.0);
  ASSERT_TRUE(lp.feasible);
  EXPECT_DOUBLE_EQ(lp.weight[0][1], 1.0);
  EXPECT_DOUBLE_EQ(lp.weight[1][0], 1.0);
  EXPECT_DOUBLE_EQ(lp.value, 3.0);
}

TEST(MckpLp, RespectsAllowedMask) {
  std::vector<ChoiceGroup> groups = {{{0.0, 10.0}, {1.0, 1.0}}};
  std::vector<std::vector<char>> allowed = {{0, 1}};  // forbid the good choice
  const auto lp = solve_mckp_lp(groups, 100.0, allowed);
  ASSERT_TRUE(lp.feasible);
  EXPECT_DOUBLE_EQ(lp.weight[0][1], 1.0);
}

TEST(MckpLp, FullyMaskedGroupIsInfeasible) {
  std::vector<ChoiceGroup> groups = {{{0.0, 1.0}, {1.0, 1.0}}};
  std::vector<std::vector<char>> allowed = {{0, 0}};
  EXPECT_FALSE(solve_mckp_lp(groups, 100.0, allowed).feasible);
}

TEST(MckpGreedy, FeasibleAndNoWorseThanBase) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const auto groups = random_instance(8, 3, rng);
    const double min_cost = min_total_cost(groups);
    const double budget = min_cost * rng.uniform(1.0, 2.5);
    const auto greedy = solve_mckp_greedy(groups, budget);
    ASSERT_TRUE(greedy.feasible);
    double cost = 0.0, base_value = 0.0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      cost += groups[g].cost[static_cast<std::size_t>(greedy.choice[g])];
      // Base = value at each group's cheapest choice.
      std::size_t cheapest = 0;
      for (std::size_t m = 1; m < groups[g].cost.size(); ++m) {
        if (groups[g].cost[m] < groups[g].cost[cheapest]) cheapest = m;
      }
      base_value += groups[g].value[cheapest];
    }
    EXPECT_LE(cost, budget + 1e-9);
    EXPECT_LE(greedy.value, base_value + 1e-9);
  }
}

TEST(MckpGreedy, NeverBelowLpBound) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const auto groups = random_instance(6, 3, rng);
    const double budget = min_total_cost(groups) * 1.4;
    const auto lp = solve_mckp_lp(groups, budget);
    const auto greedy = solve_mckp_greedy(groups, budget);
    ASSERT_TRUE(lp.feasible);
    ASSERT_TRUE(greedy.feasible);
    EXPECT_GE(greedy.value, lp.value - 1e-9);
  }
}

TEST(Mckp, ValidationErrors) {
  EXPECT_THROW(solve_mckp_dp({{{1.0}, {}}}, 1.0), std::invalid_argument);
  EXPECT_THROW(solve_mckp_dp({{{1.0}, {-0.5}}}, 1.0), std::invalid_argument);
  EXPECT_THROW(solve_mckp_dp({{{1.0}, {0.5}}}, 1.0, 0), std::invalid_argument);
}

TEST(Mckp, EmptyInstanceIsTriviallyFeasible) {
  const auto sol = solve_mckp_dp({}, 1.0);
  EXPECT_TRUE(sol.feasible);
  EXPECT_TRUE(sol.choice.empty());
}

}  // namespace
}  // namespace clado::solver
