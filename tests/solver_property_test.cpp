// Property sweeps over the solver stack at realistic MPQ sizes: these are
// the guarantees the pipeline's correctness rests on, checked across many
// random instances (TEST_P over seeds).
#include <gtest/gtest.h>

#include <cmath>

#include "clado/solver/anneal.h"
#include "clado/solver/iqp.h"
#include "clado/solver/mckp.h"
#include "clado/tensor/ops.h"
#include "clado/tensor/rng.h"

namespace clado::solver {
namespace {

using clado::tensor::Rng;
using clado::tensor::Tensor;

Tensor random_psd(std::int64_t n, Rng& rng) {
  const Tensor a = Tensor::randn({n, n}, rng);
  Tensor out({n, n});
  clado::tensor::gemm(false, true, n, n, n, 1.0F, a.data(), a.data(), 0.0F, out.data());
  return out;
}

QuadraticProblem random_problem(std::size_t groups, std::size_t choices, Rng& rng,
                                double slack) {
  QuadraticProblem p;
  p.G = random_psd(static_cast<std::int64_t>(groups * choices), rng);
  p.cost.resize(groups);
  double min_cost = 0.0;
  for (auto& g : p.cost) {
    double cheapest = 1e18;
    for (std::size_t m = 0; m < choices; ++m) {
      g.push_back(rng.uniform(0.2, 2.0));
      cheapest = std::min(cheapest, g.back());
    }
    min_cost += cheapest;
  }
  p.budget = min_cost * slack;
  return p;
}

class SeededSolverTest : public ::testing::TestWithParam<int> {};

TEST_P(SeededSolverTest, BranchAndBoundIsExactOnSmallInstances) {
  Rng rng(100 + GetParam());
  const auto p = random_problem(6, 3, rng, 1.0 + 0.1 * (GetParam() % 7));
  const auto exact = solve_iqp_brute_force(p);
  const auto bb = solve_iqp(p);
  ASSERT_EQ(bb.feasible, exact.feasible);
  if (exact.feasible) {
    EXPECT_NEAR(bb.objective, exact.objective,
                1e-4 * std::max(1.0, std::abs(exact.objective)));
  }
}

TEST_P(SeededSolverTest, BoundNeverExceedsIncumbentAtScale) {
  // At paper scale (I=16..25, |B|=3) brute force is impossible; check the
  // internal consistency instead: the reported global bound must be a true
  // lower bound on the returned objective, and the result proven optimal.
  Rng rng(200 + GetParam());
  const auto p = random_problem(12, 3, rng, 1.3);
  const auto bb = solve_iqp(p);
  ASSERT_TRUE(bb.feasible);
  EXPECT_LE(bb.best_bound, bb.objective + 1e-6);
  EXPECT_TRUE(bb.proven_optimal);
  EXPECT_LE(p.integer_cost(bb.choice), p.budget + 1e-9);
}

TEST_P(SeededSolverTest, LocalSearchCannotImproveBnbSolution) {
  Rng rng(300 + GetParam());
  const auto p = random_problem(10, 3, rng, 1.4);
  const auto bb = solve_iqp(p);
  ASSERT_TRUE(bb.feasible);
  std::vector<int> refined = bb.choice;
  const double after = local_search_1opt(p, refined);
  EXPECT_GE(after, bb.objective - 1e-5 * std::max(1.0, std::abs(bb.objective)));
}

TEST_P(SeededSolverTest, AnnealNeverBeatsProvenOptimum) {
  Rng rng(400 + GetParam());
  const auto p = random_problem(8, 3, rng, 1.5);
  const auto bb = solve_iqp(p);
  AnnealOptions opts;
  opts.seed = static_cast<std::uint64_t>(GetParam());
  const auto heur = solve_anneal(p, opts);
  ASSERT_TRUE(bb.feasible);
  ASSERT_TRUE(heur.feasible);
  EXPECT_GE(heur.objective, bb.objective - 1e-5 * std::max(1.0, std::abs(bb.objective)));
}

TEST_P(SeededSolverTest, MckpDpNeverWorseThanGreedy) {
  Rng rng(500 + GetParam());
  std::vector<ChoiceGroup> groups(12);
  double min_cost = 0.0;
  for (auto& g : groups) {
    double cheapest = 1e18;
    for (int m = 0; m < 3; ++m) {
      g.value.push_back(rng.uniform(-1.0, 1.0));
      g.cost.push_back(rng.uniform(0.2, 2.0));
      cheapest = std::min(cheapest, g.cost.back());
    }
    min_cost += cheapest;
  }
  const double budget = min_cost * 1.4;
  const auto dp = solve_mckp_dp(groups, budget);
  const auto greedy = solve_mckp_greedy(groups, budget);
  ASSERT_TRUE(dp.feasible);
  ASSERT_TRUE(greedy.feasible);
  EXPECT_LE(dp.value, greedy.value + 1e-6);
}

TEST_P(SeededSolverTest, MckpLpBoundsDp) {
  Rng rng(600 + GetParam());
  std::vector<ChoiceGroup> groups(10);
  double min_cost = 0.0;
  for (auto& g : groups) {
    double cheapest = 1e18;
    for (int m = 0; m < 4; ++m) {
      g.value.push_back(rng.uniform(-1.0, 1.0));
      g.cost.push_back(rng.uniform(0.2, 2.0));
      cheapest = std::min(cheapest, g.cost.back());
    }
    min_cost += cheapest;
  }
  const double budget = min_cost * 1.6;
  const auto lp = solve_mckp_lp(groups, budget);
  const auto dp = solve_mckp_dp(groups, budget);
  ASSERT_TRUE(lp.feasible);
  ASSERT_TRUE(dp.feasible);
  EXPECT_LE(lp.value, dp.value + 1e-6);
}

TEST_P(SeededSolverTest, BudgetMonotonicity) {
  // Enlarging the budget can only improve (reduce) the optimal objective.
  Rng rng(700 + GetParam());
  auto p = random_problem(8, 3, rng, 1.1);
  const auto tight = solve_iqp(p);
  p.budget *= 1.5;
  const auto loose = solve_iqp(p);
  ASSERT_TRUE(tight.feasible);
  ASSERT_TRUE(loose.feasible);
  EXPECT_LE(loose.objective, tight.objective + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededSolverTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace clado::solver
