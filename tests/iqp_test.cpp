#include "clado/solver/iqp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "clado/fault/fault.h"
#include "clado/solver/anneal.h"
#include "clado/tensor/ops.h"
#include "clado/tensor/rng.h"

namespace clado::solver {
namespace {

using clado::tensor::Rng;
using clado::tensor::Tensor;

Tensor random_psd(std::int64_t n, Rng& rng) {
  const Tensor a = Tensor::randn({n, n}, rng);
  Tensor out({n, n});
  clado::tensor::gemm(false, true, n, n, n, 1.0F, a.data(), a.data(), 0.0F, out.data());
  return out;
}

QuadraticProblem random_problem(std::size_t groups, std::size_t choices, Rng& rng,
                                double budget_slack) {
  QuadraticProblem p;
  p.G = random_psd(static_cast<std::int64_t>(groups * choices), rng);
  p.cost.resize(groups);
  double min_cost = 0.0;
  for (auto& g : p.cost) {
    double cheapest = 1e18;
    for (std::size_t m = 0; m < choices; ++m) {
      g.push_back(rng.uniform(0.2, 2.0));
      cheapest = std::min(cheapest, g.back());
    }
    min_cost += cheapest;
  }
  p.budget = min_cost * budget_slack;
  return p;
}

TEST(LocalSearch, ImprovesOrKeepsObjective) {
  Rng rng(1);
  const auto p = random_problem(6, 3, rng, 1.6);
  std::vector<int> choice(6, 0);
  // Start from each group's cheapest choice (feasible by construction).
  for (std::size_t g = 0; g < 6; ++g) {
    std::size_t cheapest = 0;
    for (std::size_t m = 1; m < 3; ++m) {
      if (p.cost[g][m] < p.cost[g][cheapest]) cheapest = m;
    }
    choice[g] = static_cast<int>(cheapest);
  }
  const double before = p.integer_objective(choice);
  const double after = local_search_1opt(p, choice);
  EXPECT_LE(after, before + 1e-9);
  EXPECT_LE(p.integer_cost(choice), p.budget + 1e-9);
  EXPECT_NEAR(after, p.integer_objective(choice), 1e-6 * std::max(1.0, std::abs(after)));
}

TEST(LocalSearch, ReachesOneOptFixedPoint) {
  Rng rng(2);
  const auto p = random_problem(5, 3, rng, 1.8);
  std::vector<int> choice(5, 0);
  for (std::size_t g = 0; g < 5; ++g) {
    std::size_t cheapest = 0;
    for (std::size_t m = 1; m < 3; ++m) {
      if (p.cost[g][m] < p.cost[g][cheapest]) cheapest = m;
    }
    choice[g] = static_cast<int>(cheapest);
  }
  const double obj = local_search_1opt(p, choice);
  // Verify no single-group move improves.
  for (std::size_t g = 0; g < 5; ++g) {
    for (int m = 0; m < 3; ++m) {
      if (m == choice[g]) continue;
      std::vector<int> alt = choice;
      alt[g] = m;
      if (p.integer_cost(alt) > p.budget + 1e-9) continue;
      EXPECT_GE(p.integer_objective(alt), obj - 1e-6);
    }
  }
}

TEST(Iqp, MatchesBruteForceOnRandomPsdInstances) {
  Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    const auto p = random_problem(5, 3, rng, 1.1 + 0.15 * (trial % 5));
    const auto exact = solve_iqp_brute_force(p);
    const auto bb = solve_iqp(p);
    ASSERT_EQ(bb.feasible, exact.feasible) << "trial " << trial;
    if (exact.feasible) {
      EXPECT_NEAR(bb.objective, exact.objective,
                  1e-4 * std::max(1.0, std::abs(exact.objective)))
          << "trial " << trial;
      EXPECT_TRUE(bb.proven_optimal) << "trial " << trial;
      EXPECT_LE(p.integer_cost(bb.choice), p.budget + 1e-9);
    }
  }
}

TEST(Iqp, DiagonalObjectiveReducesToMckp) {
  // With a diagonal G the IQP is separable; compare against brute force.
  Rng rng(4);
  QuadraticProblem p;
  const std::int64_t n = 12;
  p.G = Tensor({n, n});
  for (std::int64_t i = 0; i < n; ++i) p.G.at({i, i}) = static_cast<float>(rng.uniform(0.0, 2.0));
  p.cost = {{1, 2, 4}, {1, 2, 4}, {1, 2, 4}, {1, 2, 4}};
  p.budget = 8.0;
  const auto exact = solve_iqp_brute_force(p);
  const auto bb = solve_iqp(p);
  ASSERT_TRUE(bb.feasible);
  EXPECT_NEAR(bb.objective, exact.objective, 1e-6);
}

TEST(Iqp, InfeasibleBudget) {
  QuadraticProblem p;
  p.G = Tensor({2, 2});
  p.cost = {{5.0, 6.0}};
  p.budget = 1.0;
  const auto res = solve_iqp(p);
  EXPECT_FALSE(res.feasible);
}

TEST(Iqp, TightBudgetForcesCheapestAssignment) {
  Rng rng(5);
  auto p = random_problem(4, 3, rng, 1.0);  // budget == min cost
  const auto res = solve_iqp(p);
  ASSERT_TRUE(res.feasible);
  for (std::size_t g = 0; g < 4; ++g) {
    std::size_t cheapest = 0;
    for (std::size_t m = 1; m < 3; ++m) {
      if (p.cost[g][m] < p.cost[g][cheapest]) cheapest = m;
    }
    EXPECT_EQ(res.choice[g], static_cast<int>(cheapest));
  }
}

TEST(Iqp, CrossTermsChangeTheOptimum) {
  // Figure 1's motivating example as a unit test: two groups, two choices
  // ("quantize" with cost 1 / "keep" with cost 2), budget forces exactly
  // two cheap picks among three groups; negative cross term between groups
  // 1 and 2 makes (1,2) optimal even though diagonals prefer (0,1).
  QuadraticProblem p;
  const std::int64_t n = 6;  // 3 groups x 2 choices; choice 0 = quantize
  p.G = Tensor({n, n});
  // Diagonal sensitivities for "quantize": 0.115, 0.140, 0.246.
  p.G.at({0, 0}) = 0.115F;
  p.G.at({2, 2}) = 0.140F;
  p.G.at({4, 4}) = 0.246F;
  // Cross terms (i<j, quantize-quantize): (0,1)=+0.009, (1,2)=0, (0,2)=-0.070... pick
  // the paper's ResNet-34 example: pair (1,2) has -0.070.
  p.G.at({2, 4}) = -0.070F;
  p.G.at({4, 2}) = -0.070F;
  p.G.at({0, 2}) = 0.009F;
  p.G.at({2, 0}) = 0.009F;
  p.cost = {{1.0, 2.0}, {1.0, 2.0}, {1.0, 2.0}};
  p.budget = 4.0;  // exactly two groups can stay at cost 2 -> two quantized

  IqpOptions opts;
  opts.objective_convex = false;  // the example matrix is indefinite
  const auto res = solve_iqp(p, opts);
  ASSERT_TRUE(res.feasible);
  // Optimal: quantize groups 1 and 2 (0.140 + 0.246 - 0.140 = 0.246 vs
  // 0.115 + 0.140 + 0.018 = 0.273).
  EXPECT_EQ(res.choice[0], 1);
  EXPECT_EQ(res.choice[1], 0);
  EXPECT_EQ(res.choice[2], 0);

  // Diagonal-only solver would pick groups 0 and 1 instead.
  QuadraticProblem diag = p;
  diag.G = Tensor({n, n});
  for (std::int64_t i = 0; i < n; ++i) diag.G.at({i, i}) = p.G.at({i, i});
  const auto res_diag = solve_iqp(diag, opts);
  ASSERT_TRUE(res_diag.feasible);
  EXPECT_EQ(res_diag.choice[0], 0);
  EXPECT_EQ(res_diag.choice[1], 0);
  EXPECT_EQ(res_diag.choice[2], 1);
}

TEST(Iqp, NodeLimitReportsHitLimit) {
  Rng rng(6);
  const auto p = random_problem(8, 3, rng, 1.4);
  IqpOptions opts;
  opts.max_nodes = 1;
  const auto res = solve_iqp(p, opts);
  EXPECT_TRUE(res.hit_limit);
  if (res.feasible) {
    EXPECT_FALSE(res.proven_optimal);
    EXPECT_LE(p.integer_cost(res.choice), p.budget + 1e-9);
  }
}

TEST(Iqp, NonConvexModeStillProducesFeasibleAssignments) {
  Rng rng(7);
  // Indefinite G: random symmetric.
  QuadraticProblem p;
  const std::int64_t n = 9;
  Tensor g = Tensor::randn({n, n}, rng);
  p.G = Tensor({n, n});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      p.G.at({i, j}) = 0.5F * (g.at({i, j}) + g.at({j, i}));
    }
  }
  p.cost = {{1, 2, 3}, {1, 2, 3}, {1, 2, 3}};
  p.budget = 6.0;
  IqpOptions opts;
  opts.objective_convex = false;
  opts.max_nodes = 500;
  const auto res = solve_iqp(p, opts);
  ASSERT_TRUE(res.feasible);
  EXPECT_LE(p.integer_cost(res.choice), p.budget + 1e-9);
}

TEST(Anneal, FindsNearOptimalOnSmallPsdInstance) {
  Rng rng(8);
  for (int trial = 0; trial < 5; ++trial) {
    const auto p = random_problem(5, 3, rng, 1.5);
    const auto exact = solve_iqp_brute_force(p);
    AnnealOptions opts;
    opts.iterations = 5000;
    opts.seed = 42 + static_cast<std::uint64_t>(trial);
    const auto heur = solve_anneal(p, opts);
    ASSERT_TRUE(heur.feasible);
    EXPECT_LE(p.integer_cost(heur.choice), p.budget + 1e-9);
    EXPECT_LE(heur.objective, exact.objective * 1.2 + 0.1);
  }
}

TEST(Anneal, InfeasibleInstanceReported) {
  QuadraticProblem p;
  p.G = Tensor({2, 2});
  p.cost = {{5.0, 6.0}};
  p.budget = 1.0;
  EXPECT_FALSE(solve_anneal(p).feasible);
}

TEST(Iqp, StatusDistinguishesProvenInfeasibleFromStarvedSearch) {
  // Proven infeasible: the search completes without an incumbent because
  // none exists — pruning only ever cuts against incumbents, so an empty
  // completed search is a proof.
  QuadraticProblem p;
  p.G = Tensor({2, 2});
  p.cost = {{5.0, 6.0}};
  p.budget = 1.0;
  const auto infeasible = solve_iqp(p);
  EXPECT_FALSE(infeasible.feasible);
  EXPECT_FALSE(infeasible.hit_limit);
  EXPECT_EQ(infeasible.status, IqpStatus::kInfeasible);

  // Starved: the node budget expires before any incumbent is found. That
  // proves nothing about feasibility and the status must say so.
  Rng rng(11);
  const auto q = random_problem(6, 3, rng, 1.4);
  IqpOptions opts;
  opts.max_nodes = 0;
  const auto starved = solve_iqp(q, opts);
  EXPECT_TRUE(starved.hit_limit);
  EXPECT_FALSE(starved.feasible);
  EXPECT_EQ(starved.status, IqpStatus::kLimitNoIncumbent);

  // Healthy solve on the same instance: optimal and proven.
  const auto solved = solve_iqp(q);
  ASSERT_TRUE(solved.feasible);
  EXPECT_EQ(solved.status, IqpStatus::kOptimal);
  EXPECT_EQ(solved.source, SolutionSource::kIqp);

  EXPECT_STREQ(iqp_status_name(IqpStatus::kOptimal), "optimal");
  EXPECT_STREQ(iqp_status_name(IqpStatus::kLimitNoIncumbent), "limit_no_incumbent");
  EXPECT_STREQ(solution_source_name(SolutionSource::kMckpDp), "mckp_dp");
}

TEST(Fallback, MatchesNativeIqpWhenHealthy) {
  Rng rng(12);
  const auto p = random_problem(5, 3, rng, 1.5);
  const auto native = solve_iqp(p);
  const auto chained = solve_with_fallback(p);
  ASSERT_TRUE(chained.feasible);
  EXPECT_EQ(chained.source, SolutionSource::kIqp);
  EXPECT_EQ(chained.choice, native.choice);
  EXPECT_DOUBLE_EQ(chained.objective, native.objective);
}

TEST(Fallback, StarvedSearchDegradesToMckpDp) {
  Rng rng(13);
  const auto p = random_problem(6, 3, rng, 1.4);
  IqpOptions opts;
  opts.max_nodes = 0;  // B&B finds no incumbent at all
  const auto res = solve_with_fallback(p, opts);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.status, IqpStatus::kFeasible);
  EXPECT_EQ(res.source, SolutionSource::kMckpDp);
  EXPECT_FALSE(res.proven_optimal);
  EXPECT_LE(p.integer_cost(res.choice), p.budget + 1e-9);
  // The degraded objective is the true quadratic objective of the served
  // choice, not the diagonal proxy the DP optimized.
  EXPECT_NEAR(res.objective, p.integer_objective(res.choice),
              1e-6 * std::max(1.0, std::abs(res.objective)));
  // No usable bound survives a failed B&B.
  EXPECT_TRUE(std::isinf(res.gap()));
}

TEST(Fallback, AbsorbsInjectedOracleFailure) {
  Rng rng(14);
  const auto p = random_problem(5, 3, rng, 1.5);

  clado::fault::arm_from(clado::fault::Site::kSolverOracle, 1);
  // The raw solver propagates the failure...
  EXPECT_THROW(solve_iqp(p), clado::fault::FaultInjected);
  // ...the chain absorbs it and serves a feasible degraded assignment.
  const auto res = solve_with_fallback(p);
  clado::fault::disarm_all();

  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.source, SolutionSource::kMckpDp);
  EXPECT_LE(p.integer_cost(res.choice), p.budget + 1e-9);
}

TEST(Fallback, ProvenInfeasibilityPassesThroughEveryTier) {
  // No tier can conjure bytes that do not exist: a budget below the
  // cheapest assignment stays infeasible with its proof intact.
  QuadraticProblem p;
  p.G = Tensor({2, 2});
  p.cost = {{5.0, 6.0}};
  p.budget = 1.0;
  const auto res = solve_with_fallback(p);
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.status, IqpStatus::kInfeasible);
}

TEST(Anneal, DeterministicForFixedSeed) {
  Rng rng(9);
  const auto p = random_problem(6, 3, rng, 1.5);
  AnnealOptions opts;
  opts.seed = 7;
  const auto a = solve_anneal(p, opts);
  const auto b = solve_anneal(p, opts);
  EXPECT_EQ(a.choice, b.choice);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

}  // namespace
}  // namespace clado::solver
