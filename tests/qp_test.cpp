#include "clado/solver/qp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "clado/linalg/eigen.h"
#include "clado/linalg/matrix.h"
#include "clado/tensor/ops.h"
#include "clado/tensor/rng.h"

namespace clado::solver {
namespace {

using clado::tensor::Rng;
using clado::tensor::Tensor;

Tensor random_psd(std::int64_t n, Rng& rng, float diag_boost = 0.5F) {
  const Tensor a = Tensor::randn({n, n}, rng);
  Tensor out({n, n});
  clado::tensor::gemm(false, true, n, n, n, 1.0F, a.data(), a.data(), 0.0F, out.data());
  for (std::int64_t i = 0; i < n; ++i) out.at({i, i}) += diag_boost;
  return out;
}

QuadraticProblem random_problem(std::size_t groups, std::size_t choices, Rng& rng,
                                double budget_slack = 1.5) {
  QuadraticProblem p;
  const auto n = static_cast<std::int64_t>(groups * choices);
  p.G = random_psd(n, rng);
  p.cost.resize(groups);
  double min_cost = 0.0;
  for (auto& g : p.cost) {
    double cheapest = 1e18;
    for (std::size_t m = 0; m < choices; ++m) {
      g.push_back(rng.uniform(0.2, 2.0));
      cheapest = std::min(cheapest, g.back());
    }
    min_cost += cheapest;
  }
  p.budget = min_cost * budget_slack;
  return p;
}

TEST(QuadraticProblem, ValidationAndAccessors) {
  QuadraticProblem p;
  p.G = Tensor({4, 4});
  p.cost = {{1.0, 2.0}, {1.0, 2.0}};
  p.budget = 3.0;
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.total_choices(), 4);
  EXPECT_EQ(p.num_groups(), 2);
  EXPECT_EQ(p.offset(0), 0);
  EXPECT_EQ(p.offset(1), 2);

  p.G = Tensor({3, 3});
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(QuadraticProblem, IntegerObjectiveAndCost) {
  QuadraticProblem p;
  p.G = Tensor({4, 4});
  // G = I: objective of any one-hot pair = 2 (two diagonal entries).
  for (std::int64_t i = 0; i < 4; ++i) p.G.at({i, i}) = 1.0F;
  p.cost = {{1.0, 2.0}, {3.0, 4.0}};
  p.budget = 10.0;
  EXPECT_DOUBLE_EQ(p.integer_objective({0, 1}), 2.0);
  EXPECT_DOUBLE_EQ(p.integer_cost({0, 1}), 5.0);
  // Add a cross term between (g0, c0) and (g1, c1).
  p.G.at({0, 3}) = 2.0F;
  p.G.at({3, 0}) = 2.0F;
  EXPECT_DOUBLE_EQ(p.integer_objective({0, 1}), 6.0);
}

TEST(FrankWolfe, SolvesUnconstrainedSimplexCase) {
  // One group, diagonal G = diag(g): min Σ g_i x_i² over the simplex has
  // the closed form x_i ∝ 1/g_i with optimum 1 / Σ (1/g_i).
  QuadraticProblem p;
  p.G = Tensor({3, 3});
  p.G.at({0, 0}) = 3.0F;
  p.G.at({1, 1}) = 0.5F;
  p.G.at({2, 2}) = 2.0F;
  p.cost = {{1.0, 1.0, 1.0}};
  p.budget = 2.0;
  FwOptions opts;
  opts.max_iters = 2000;
  const auto res = frank_wolfe(p, opts);
  ASSERT_TRUE(res.feasible);
  const double inv_sum = 1.0 / 3.0 + 2.0 + 0.5;
  EXPECT_NEAR(res.x[0], (1.0 / 3.0) / inv_sum, 2e-2);
  EXPECT_NEAR(res.x[1], 2.0 / inv_sum, 2e-2);
  EXPECT_NEAR(res.x[2], 0.5 / inv_sum, 2e-2);
  EXPECT_NEAR(res.objective, 1.0 / inv_sum, 1e-3);
}

TEST(FrankWolfe, ObjectiveDecreasesBelowWarmStart) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const auto p = random_problem(5, 3, rng);
    const auto res = frank_wolfe(p, {});
    ASSERT_TRUE(res.feasible);
    EXPECT_TRUE(std::isfinite(res.objective));
    EXPECT_GE(res.objective, -1e-6);  // PSD objective is nonnegative
  }
}

TEST(FrankWolfe, LowerBoundIsValidForIntegerSolutions) {
  // For PSD G the FW dual bound must not exceed the best integer value.
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto p = random_problem(4, 3, rng);
    const auto res = frank_wolfe(p, {});
    ASSERT_TRUE(res.feasible);
    // Enumerate integer assignments.
    double best = 1e18;
    std::vector<int> choice(4, 0);
    while (true) {
      if (p.integer_cost(choice) <= p.budget) {
        best = std::min(best, p.integer_objective(choice));
      }
      std::size_t g = 0;
      while (g < 4 && ++choice[g] == 3) {
        choice[g] = 0;
        ++g;
      }
      if (g == 4) break;
    }
    EXPECT_LE(res.lower_bound, best + 1e-5) << "trial " << trial;
  }
}

TEST(FrankWolfe, SolutionStaysInPolytope) {
  Rng rng(3);
  const auto p = random_problem(6, 3, rng, 1.3);
  const auto res = frank_wolfe(p, {});
  ASSERT_TRUE(res.feasible);
  double cost = 0.0;
  std::size_t k = 0;
  for (std::size_t g = 0; g < p.cost.size(); ++g) {
    double sum = 0.0;
    for (std::size_t m = 0; m < p.cost[g].size(); ++m, ++k) {
      EXPECT_GE(res.x[k], -1e-9);
      EXPECT_LE(res.x[k], 1.0 + 1e-9);
      sum += res.x[k];
      cost += res.x[k] * p.cost[g][m];
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
  EXPECT_LE(cost, p.budget + 1e-6);
}

TEST(FrankWolfe, InfeasibleBudgetReported) {
  QuadraticProblem p;
  p.G = Tensor({2, 2});
  p.cost = {{5.0, 6.0}};
  p.budget = 1.0;
  EXPECT_FALSE(frank_wolfe(p, {}).feasible);
}

TEST(FrankWolfe, RespectsAllowedMask) {
  QuadraticProblem p;
  p.G = Tensor({2, 2});
  p.G.at({0, 0}) = 0.1F;  // better choice...
  p.G.at({1, 1}) = 5.0F;
  p.cost = {{1.0, 1.0}};
  p.budget = 2.0;
  std::vector<std::vector<char>> allowed = {{0, 1}};  // ...is masked out
  const auto res = frank_wolfe(p, {}, allowed);
  ASSERT_TRUE(res.feasible);
  EXPECT_NEAR(res.x[1], 1.0, 1e-6);
}

TEST(FrankWolfe, GapConvergesOnEasyProblem) {
  Rng rng(4);
  const auto p = random_problem(5, 3, rng, 2.0);
  FwOptions opts;
  opts.max_iters = 400;
  const auto res = frank_wolfe(p, opts);
  ASSERT_TRUE(res.feasible);
  // Frank–Wolfe converges O(1/k); expect a modest but real gap closure.
  EXPECT_LE(res.objective - res.lower_bound,
            2e-2 * std::max(1.0, std::abs(res.objective)));
}

}  // namespace
}  // namespace clado::solver
