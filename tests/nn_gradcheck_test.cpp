// End-to-end gradient and Hessian-vector-product checks through the full
// loss: these certify the machinery behind the HAWQ baseline (Hutchinson
// traces) and the Table 2 "exact vHv" reference.
#include <gtest/gtest.h>

#include <cmath>

#include "clado/nn/blocks.h"
#include "clado/nn/hvp.h"
#include "clado/nn/layers.h"
#include "clado/nn/loss.h"
#include "clado/nn/sequential.h"
#include "clado/tensor/ops.h"

namespace clado::nn {
namespace {

using clado::tensor::Rng;

struct TinyNet {
  Sequential net;
  Tensor inputs;
  std::vector<std::int64_t> labels;
};

void make_tiny_cnn(TinyNet& t, Rng& rng) {
  t.net.emplace_named<Conv2d>("conv1", 2, 4, 3, 1, 1)->init(rng);
  t.net.emplace_named<Activation>("act1", Act::kRelu);
  t.net.emplace_named<GlobalAvgPool>("pool");
  t.net.emplace_named<Linear>("fc", 4, 3)->init(rng);
  t.inputs = Tensor::randn({6, 2, 5, 5}, rng);
  for (int i = 0; i < 6; ++i) t.labels.push_back(i % 3);
}

TEST(FullNetGradCheck, LossGradientMatchesFiniteDifference) {
  Rng rng(1);
  TinyNet t;
  make_tiny_cnn(t, rng);
  zero_all_grads(t.net);
  loss_and_backward(t.net, t.inputs, t.labels);

  std::vector<ParamRef> params;
  t.net.collect_params("", params);
  const double eps = 1e-3;
  for (auto& p : params) {
    if (!p.param->trainable) continue;
    Tensor& w = p.param->value;
    const std::int64_t stride = std::max<std::int64_t>(1, w.numel() / 12);
    for (std::int64_t i = 0; i < w.numel(); i += stride) {
      const float saved = w[i];
      w[i] = saved + static_cast<float>(eps);
      const double plus = loss_only(t.net, t.inputs, t.labels);
      w[i] = saved - static_cast<float>(eps);
      const double minus = loss_only(t.net, t.inputs, t.labels);
      w[i] = saved;
      const double numeric = (plus - minus) / (2.0 * eps);
      EXPECT_NEAR(p.param->grad[i], numeric, 2e-3 + 2e-2 * std::abs(numeric))
          << p.name << " @" << i;
    }
  }
}

TEST(Hvp, MatchesSecondFiniteDifferenceOfLoss) {
  // vᵀHv from gradients must agree with the pure-loss second difference
  //   (L(w + tv) − 2 L(w) + L(w − tv)) / t².
  Rng rng(2);
  TinyNet t;
  make_tiny_cnn(t, rng);
  std::vector<QuantLayerRef> layers;
  t.net.collect_quant_layers("", layers);
  ASSERT_EQ(layers.size(), 2U);

  for (auto& lref : layers) {
    Parameter& w = lref.layer->weight_param();
    LayerDirection dir{&w, Tensor::randn(w.value.shape(), rng, 0.05F)};

    const double vhv = exact_vhv(t.net, t.inputs, t.labels, {dir}, 1e-2);

    const double t_step = 0.05;
    const Tensor saved = w.value;
    const double base = loss_only(t.net, t.inputs, t.labels);
    Tensor plus = saved;
    clado::tensor::axpy(static_cast<float>(t_step), dir.delta.flat(), plus.flat());
    w.value = plus;
    const double lp = loss_only(t.net, t.inputs, t.labels);
    Tensor minus = saved;
    clado::tensor::axpy(static_cast<float>(-t_step), dir.delta.flat(), minus.flat());
    w.value = minus;
    const double lm = loss_only(t.net, t.inputs, t.labels);
    w.value = saved;

    const double second_diff = (lp - 2.0 * base + lm) / (t_step * t_step);
    EXPECT_NEAR(vhv, second_diff, 0.15 * std::max(1.0, std::abs(second_diff)))
        << lref.name;
  }
}

TEST(Hvp, CrossTermConsistency) {
  // For directions u (layer A) and v (layer B):
  //   (u+v)ᵀH(u+v) = uᵀHu + vᵀHv + 2 uᵀHv,
  // the identity Eq. (13) exploits. Verify with exact_vhv.
  Rng rng(3);
  TinyNet t;
  make_tiny_cnn(t, rng);
  std::vector<QuantLayerRef> layers;
  t.net.collect_quant_layers("", layers);
  Parameter& wa = layers[0].layer->weight_param();
  Parameter& wb = layers[1].layer->weight_param();
  LayerDirection u{&wa, Tensor::randn(wa.value.shape(), rng, 0.05F)};
  LayerDirection v{&wb, Tensor::randn(wb.value.shape(), rng, 0.05F)};

  const double uu = exact_vhv(t.net, t.inputs, t.labels, {u}, 1e-2);
  const double vv = exact_vhv(t.net, t.inputs, t.labels, {v}, 1e-2);
  const double both = exact_vhv(t.net, t.inputs, t.labels, {u, v}, 1e-2);
  const double cross_from_sum = (both - uu - vv) / 2.0;

  // Alternative estimate of the cross term: perturb u by ±t and take the
  // directional derivative of v's gradient — reuse exact_vhv's machinery
  // by linearity: uᵀHv = ((u+v)ᵀH(u+v) − (u−v)ᵀH(u−v)) / 4.
  LayerDirection v_neg{&wb, v.delta * -1.0F};
  const double diff = exact_vhv(t.net, t.inputs, t.labels, {u, v_neg}, 1e-2);
  const double cross_from_diff = (both - diff) / 4.0;

  EXPECT_NEAR(cross_from_sum, cross_from_diff,
              0.1 * std::max(0.05, std::abs(cross_from_sum)));
}

TEST(Hvp, RestoresWeightsAndGrads) {
  Rng rng(4);
  TinyNet t;
  make_tiny_cnn(t, rng);
  std::vector<QuantLayerRef> layers;
  t.net.collect_quant_layers("", layers);
  Parameter& w = layers[0].layer->weight_param();
  const Tensor before = w.value;
  LayerDirection dir{&w, Tensor::randn(w.value.shape(), rng, 0.1F)};
  exact_vhv(t.net, t.inputs, t.labels, {dir}, 1e-2);
  for (std::int64_t i = 0; i < before.numel(); ++i) EXPECT_EQ(w.value[i], before[i]);
  for (float g : w.grad.flat()) EXPECT_EQ(g, 0.0F);
}

TEST(Hvp, RejectsShapeMismatch) {
  Rng rng(5);
  TinyNet t;
  make_tiny_cnn(t, rng);
  std::vector<QuantLayerRef> layers;
  t.net.collect_quant_layers("", layers);
  LayerDirection bad{&layers[0].layer->weight_param(), Tensor({2, 2})};
  EXPECT_THROW(exact_vhv(t.net, t.inputs, t.labels, {bad}, 1e-2), std::invalid_argument);
}

TEST(Hvp, PositiveForConvergedConvexRegion) {
  // Near a (local) minimum reached by a few training steps, random-direction
  // curvature should be mostly nonnegative — the assumption behind the PSD
  // expectation for Ĝ on the full training set (§4.2 discussion).
  Rng rng(6);
  TinyNet t;
  make_tiny_cnn(t, rng);
  // Quick training to reduce the gradient term.
  for (int step = 0; step < 100; ++step) {
    zero_all_grads(t.net);
    loss_and_backward(t.net, t.inputs, t.labels);
    std::vector<ParamRef> params;
    t.net.collect_params("", params);
    for (auto& p : params) {
      if (!p.param->trainable) continue;
      clado::tensor::axpy(-0.1F, p.param->grad.flat(), p.param->value.flat());
    }
  }
  std::vector<QuantLayerRef> layers;
  t.net.collect_quant_layers("", layers);
  int nonneg = 0;
  const int trials = 8;
  for (int i = 0; i < trials; ++i) {
    Parameter& w = layers[static_cast<std::size_t>(i) % layers.size()].layer->weight_param();
    LayerDirection dir{&w, Tensor::randn(w.value.shape(), rng, 0.05F)};
    if (exact_vhv(t.net, t.inputs, t.labels, {dir}, 1e-2) > -1e-3) ++nonneg;
  }
  EXPECT_GE(nonneg, trials - 2);
}

}  // namespace
}  // namespace clado::nn
