// End-to-end pipeline test on a real (small) trained model: pretrain →
// calibrate → measure sensitivities → solve all algorithms → PTQ evaluate.
// Asserts the structural properties the paper's evaluation relies on, not
// exact accuracies (those are benchmarked, not unit-tested).
#include <gtest/gtest.h>

#include <map>

#include "clado/core/algorithms.h"
#include "clado/core/qat_runner.h"
#include "clado/data/synthcv.h"
#include "clado/models/builders.h"
#include "clado/models/zoo.h"

namespace clado::core {
namespace {

using clado::models::Model;
using clado::models::TrainedModel;
using clado::tensor::Rng;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Train one small real model once for the whole suite.
    Rng rng(0xFEED);
    tm_ = new TrainedModel{clado::models::build_resnet_a(rng, 8),
                           clado::data::SynthCvDataset(dataset_config(21)),
                           clado::data::SynthCvDataset(dataset_config(22)),
                           0.0};
    clado::models::ZooConfig cfg;
    cfg.num_classes = 8;
    cfg.train_size = 1024;
    cfg.val_size = 512;
    tm_->val_accuracy = clado::models::train_model(tm_->model, tm_->train_set, tm_->val_set,
                                                   cfg, /*epochs=*/6, /*lr=*/0.05F);
    tm_->model.calibrate_activations(tm_->train_set.make_range_batch(0, 128));

    Rng srng(5);
    const auto idx = clado::data::sample_indices(1024, 48, srng);
    pipe_ = new MpqPipeline(tm_->model, tm_->train_set.make_batch(idx), {});
  }

  static void TearDownTestSuite() {
    delete pipe_;
    delete tm_;
    pipe_ = nullptr;
    tm_ = nullptr;
  }

  static clado::data::SynthCvDataset::Config dataset_config(std::uint64_t seed) {
    clado::data::SynthCvDataset::Config c;
    c.num_classes = 8;
    c.seed = seed;
    return c;
  }

  static TrainedModel* tm_;
  static MpqPipeline* pipe_;
};

TrainedModel* IntegrationTest::tm_ = nullptr;
MpqPipeline* IntegrationTest::pipe_ = nullptr;

TEST_F(IntegrationTest, PretrainingReachesUsefulAccuracy) {
  EXPECT_GT(tm_->val_accuracy, 0.7);
}

TEST_F(IntegrationTest, AllAlgorithmsProduceFeasibleDistinctiveAssignments) {
  const double int8 = tm_->model.uniform_size_bytes(8);
  const double target = int8 * 0.375;  // 3-bit-equivalent budget
  std::map<std::string, Assignment> assignments;
  for (auto alg : {Algorithm::kHawq, Algorithm::kMpqco, Algorithm::kCladoStar,
                   Algorithm::kClado, Algorithm::kBrecqBlock}) {
    const auto a = pipe_->assign(alg, target);
    EXPECT_LE(a.bytes, target + 1e-6) << algorithm_name(alg);
    assignments.emplace(algorithm_name(alg), a);
  }
  // CLADO must differ from CLADO* somewhere (cross-layer terms matter) —
  // on this trained model they essentially always do.
  EXPECT_NE(assignments.at("CLADO").bits, assignments.at("CLADO*").bits);
}

TEST_F(IntegrationTest, CladoObjectiveDominatesBaselinesUnderItsOwnMetric) {
  const double target = tm_->model.uniform_size_bytes(8) * 0.375;
  clado::solver::QuadraticProblem p;
  p.G = pipe_->clado_matrix();
  p.cost = pipe_->size_costs();
  p.budget = target;
  const auto clado = pipe_->assign(Algorithm::kClado, target);
  for (auto alg : {Algorithm::kHawq, Algorithm::kMpqco, Algorithm::kCladoStar}) {
    const auto other = pipe_->assign(alg, target);
    EXPECT_LE(p.integer_objective(clado.choice), p.integer_objective(other.choice) + 1e-6)
        << algorithm_name(alg);
  }
}

TEST_F(IntegrationTest, PredictedObjectiveTracksRealLossIncrease) {
  // The IQP proxy ½αᵀĜα ≈ ΔL: across several budgets, a larger predicted
  // objective must correspond to a (weakly) larger measured loss increase.
  const double int8 = tm_->model.uniform_size_bytes(8);
  const auto& batch = pipe_->engine().batch();
  const double base = tm_->model.loss(batch);
  std::vector<double> predicted, measured;
  for (double frac : {0.3, 0.4, 0.6, 0.9}) {
    const auto a = pipe_->assign(Algorithm::kClado, int8 * frac);
    auto snap = pipe_->apply_ptq(a);
    predicted.push_back(a.predicted);
    measured.push_back(tm_->model.loss(batch) - base);
    snap->restore();
  }
  for (std::size_t i = 1; i < predicted.size(); ++i) {
    EXPECT_LE(predicted[i], predicted[i - 1] + 1e-9) << "larger budget, smaller objective";
  }
  // Rank agreement between proxy and measured loss increase.
  for (std::size_t i = 1; i < measured.size(); ++i) {
    EXPECT_LE(measured[i], measured[i - 1] + 0.05);
  }
}

TEST_F(IntegrationTest, SensitivitySweepIsReusedAcrossBudgets) {
  const auto before = pipe_->engine().stats().forward_measurements;
  pipe_->assign(Algorithm::kClado, tm_->model.uniform_size_bytes(8) * 0.5);
  pipe_->assign(Algorithm::kClado, tm_->model.uniform_size_bytes(8) * 0.7);
  // No additional network measurements beyond the initial sweep.
  EXPECT_EQ(pipe_->engine().stats().forward_measurements, before);
}

TEST_F(IntegrationTest, PtqAccuracyOrderingAtAggressiveCompression) {
  // The headline claim, as a soft structural check: CLADO's PTQ accuracy
  // at an aggressive budget is at least that of the diagonal ablation.
  const double target = tm_->model.uniform_size_bytes(8) * 0.32;
  auto eval = [&](Algorithm alg) {
    const auto a = pipe_->assign(alg, target);
    auto snap = pipe_->apply_ptq(a);
    const double acc = tm_->model.accuracy_on(tm_->val_set, 512);
    snap->restore();
    return acc;
  };
  const double acc_clado = eval(Algorithm::kClado);
  const double acc_star = eval(Algorithm::kCladoStar);
  EXPECT_GE(acc_clado, acc_star - 0.03);
}

TEST_F(IntegrationTest, QatImprovesAggressivePtq) {
  const double target = tm_->model.uniform_size_bytes(8) * 0.3;
  const auto a = pipe_->assign(Algorithm::kClado, target);
  QatConfig cfg;
  cfg.epochs = 2;
  cfg.train_size = 512;
  cfg.val_size = 512;
  const QatResult res = run_qat(tm_->model, a, tm_->train_set, tm_->val_set, cfg);
  EXPECT_GE(res.post_qat_accuracy, res.pre_qat_accuracy - 0.02);
}

}  // namespace
}  // namespace clado::core
