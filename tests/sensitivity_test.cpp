#include "clado/core/sensitivity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "clado/nn/blocks.h"
#include "clado/nn/layers.h"
#include "clado/nn/loss.h"
#include "clado/quant/qat.h"

namespace clado::core {
namespace {

using clado::models::Model;
using clado::nn::Act;
using clado::nn::Activation;
using clado::nn::Conv2d;
using clado::nn::GlobalAvgPool;
using clado::nn::Linear;
using clado::nn::ResidualBlock;
using clado::nn::Sequential;
using clado::tensor::Rng;

/// A 4-quant-layer model small enough for brute-force cross-checks.
Model make_tiny_model(Rng& rng) {
  Model m;
  m.name = "tiny";
  m.net = std::make_unique<Sequential>();
  m.candidate_bits = {2, 8};
  m.scheme = clado::quant::WeightScheme::kPerTensorSymmetric;
  m.num_classes = 5;
  m.image_size = 8;

  {
    auto stem = std::make_unique<Sequential>();
    stem->emplace_named<Conv2d>("conv1", 3, 4, 3, 1, 1)->init(rng);
    stem->emplace_named<Activation>("act", Act::kRelu);
    m.net->push_back(std::move(stem), "stem");
  }
  {
    auto main = std::make_unique<Sequential>();
    main->emplace_named<Conv2d>("conv1", 4, 4, 3, 1, 1)->init(rng);
    main->emplace_named<Activation>("act", Act::kRelu);
    main->emplace_named<Conv2d>("conv2", 4, 4, 3, 1, 1)->init(rng);
    m.net->push_back(std::make_unique<ResidualBlock>(std::move(main), nullptr, true), "block");
  }
  m.net->emplace_named<GlobalAvgPool>("pool");
  m.net->emplace_named<Linear>("fc", 4, 5)->init(rng);
  m.finalize();
  return m;
}

clado::data::Batch make_batch(Rng& rng, std::int64_t n = 16) {
  clado::data::Batch batch;
  batch.images = clado::nn::Tensor::randn({n, 3, 8, 8}, rng);
  for (std::int64_t i = 0; i < n; ++i) batch.labels.push_back(i % 5);
  return batch;
}

double full_loss(Model& m, const clado::data::Batch& batch) {
  clado::nn::CrossEntropyLoss criterion;
  m.net->set_training(false);
  return criterion.forward(m.net->forward(batch.images), batch.labels);
}

TEST(SensitivityEngine, LayerAndStageDiscovery) {
  Rng rng(1);
  Model m = make_tiny_model(rng);
  ASSERT_EQ(m.num_quant_layers(), 4);
  EXPECT_EQ(m.quant_layers[0].name, "stem.conv1");
  EXPECT_EQ(m.quant_layers[1].name, "block.conv1");
  EXPECT_EQ(m.quant_layers[2].name, "block.conv2");
  EXPECT_EQ(m.quant_layers[3].name, "fc");
  EXPECT_EQ(m.quant_layers[0].stage, 0);
  EXPECT_EQ(m.quant_layers[1].stage, 1);
  EXPECT_EQ(m.quant_layers[2].stage, 1);
  EXPECT_EQ(m.quant_layers[3].stage, 3);
}

TEST(SensitivityEngine, BaseLossMatchesDirectEvaluation) {
  Rng rng(2);
  Model m = make_tiny_model(rng);
  const auto batch = make_batch(rng);
  const double direct = full_loss(m, batch);
  SensitivityEngine engine(m, batch);
  EXPECT_NEAR(engine.base_loss(), direct, 1e-6);
}

TEST(SensitivityEngine, DiagonalMatchesDefinition) {
  Rng rng(3);
  Model m = make_tiny_model(rng);
  const auto batch = make_batch(rng);
  SensitivityEngine engine(m, batch);
  const auto diag = engine.diagonal_sensitivities();

  for (std::int64_t i = 0; i < m.num_quant_layers(); ++i) {
    auto& w = m.quant_layers[static_cast<std::size_t>(i)].layer->weight_param().value;
    const clado::nn::Tensor saved = w;
    for (std::int64_t b = 0; b < 2; ++b) {
      clado::nn::Tensor perturbed = saved;
      perturbed += engine.delta(i, b);
      w = perturbed;
      const double loss = full_loss(m, batch);
      w = saved;
      const double expected = 2.0 * (loss - engine.base_loss());
      EXPECT_NEAR(diag[static_cast<std::size_t>(i)][static_cast<std::size_t>(b)], expected,
                  1e-5 + 1e-4 * std::abs(expected))
          << "layer " << i << " bits index " << b;
    }
  }
}

TEST(SensitivityEngine, FullMatrixMatchesUncachedReference) {
  // The central caching-correctness test: every Ĝ entry must equal the
  // four-point rule evaluated with plain full forward passes.
  Rng rng(4);
  Model m = make_tiny_model(rng);
  const auto batch = make_batch(rng);
  SensitivityEngine engine(m, batch);
  const auto g = engine.full_matrix();
  const auto& singles = engine.single_losses();
  const std::int64_t bits = 2;
  const std::int64_t n = m.num_quant_layers() * bits;

  for (std::int64_t i = 0; i < m.num_quant_layers(); ++i) {
    for (std::int64_t j = i + 1; j < m.num_quant_layers(); ++j) {
      auto& wi = m.quant_layers[static_cast<std::size_t>(i)].layer->weight_param().value;
      auto& wj = m.quant_layers[static_cast<std::size_t>(j)].layer->weight_param().value;
      const clado::nn::Tensor si = wi;
      const clado::nn::Tensor sj = wj;
      for (std::int64_t a = 0; a < bits; ++a) {
        for (std::int64_t b = 0; b < bits; ++b) {
          clado::nn::Tensor pi = si;
          pi += engine.delta(i, a);
          clado::nn::Tensor pj = sj;
          pj += engine.delta(j, b);
          wi = pi;
          wj = pj;
          const double pair_loss = full_loss(m, batch);
          wi = si;
          wj = sj;
          const double expected =
              pair_loss + engine.base_loss() -
              singles[static_cast<std::size_t>(i)][static_cast<std::size_t>(a)] -
              singles[static_cast<std::size_t>(j)][static_cast<std::size_t>(b)];
          const float got = g.data()[flat_index(i, a, bits) * n + flat_index(j, b, bits)];
          EXPECT_NEAR(got, expected, 1e-5 + 1e-3 * std::abs(expected))
              << "pair (" << i << "," << j << ") bits (" << a << "," << b << ")";
        }
      }
    }
  }
}

TEST(SensitivityEngine, MatrixIsSymmetricWithZeroSameLayerBlocks) {
  Rng rng(5);
  Model m = make_tiny_model(rng);
  SensitivityEngine engine(m, make_batch(rng));
  const auto g = engine.full_matrix();
  const std::int64_t n = g.size(0);
  for (std::int64_t a = 0; a < n; ++a) {
    for (std::int64_t b = 0; b < n; ++b) {
      EXPECT_EQ(g.data()[a * n + b], g.data()[b * n + a]);
    }
  }
  // Same-layer different-bit entries are structurally zero (mutually
  // exclusive one-hot choices).
  for (std::int64_t i = 0; i < m.num_quant_layers(); ++i) {
    EXPECT_EQ(g.data()[flat_index(i, 0, 2) * n + flat_index(i, 1, 2)], 0.0F);
  }
}

TEST(SensitivityEngine, MeasurementCountMatchesFormula) {
  Rng rng(6);
  Model m = make_tiny_model(rng);
  SensitivityEngine engine(m, make_batch(rng));
  engine.full_matrix();
  const std::int64_t I = m.num_quant_layers();
  const std::int64_t B = 2;
  // 1 clean + B·I singles + B·I tail rebuilds + B²·I(I−1)/2 pairs.
  const std::int64_t expected = 1 + B * I + B * I + B * B * I * (I - 1) / 2;
  EXPECT_EQ(engine.stats().forward_measurements, expected);
}

TEST(SensitivityEngine, PrefixCachingSavesStageExecutions) {
  Rng rng(7);
  Model m = make_tiny_model(rng);
  SensitivityEngine engine(m, make_batch(rng));
  engine.full_matrix();
  EXPECT_LT(engine.stats().stage_executions, engine.stats().stage_executions_naive);
}

TEST(SensitivityEngine, WeightsRestoredAfterSweep) {
  Rng rng(8);
  Model m = make_tiny_model(rng);
  std::vector<clado::nn::Tensor> before;
  for (auto& l : m.quant_layers) before.push_back(l.layer->weight_param().value);
  SensitivityEngine engine(m, make_batch(rng));
  engine.full_matrix();
  for (std::size_t i = 0; i < before.size(); ++i) {
    const auto& now = m.quant_layers[i].layer->weight_param().value;
    for (std::int64_t k = 0; k < before[i].numel(); ++k) {
      ASSERT_EQ(now[k], before[i][k]) << "layer " << i;
    }
  }
}

TEST(SensitivityEngine, DeterministicAcrossInstances) {
  Rng rng_a(9);
  Model ma = make_tiny_model(rng_a);
  Rng rng_b(9);
  Model mb = make_tiny_model(rng_b);
  Rng batch_rng_a(10);
  Rng batch_rng_b(10);
  SensitivityEngine ea(ma, make_batch(batch_rng_a));
  SensitivityEngine eb(mb, make_batch(batch_rng_b));
  const auto ga = ea.full_matrix();
  const auto gb = eb.full_matrix();
  for (std::int64_t i = 0; i < ga.numel(); ++i) EXPECT_EQ(ga[i], gb[i]);
}

TEST(SensitivityEngine, MpqcoProxyMatchesDirectOutputPerturbation) {
  Rng rng(11);
  Model m = make_tiny_model(rng);
  const auto batch = make_batch(rng);
  SensitivityEngine engine(m, batch);
  const auto proxy = engine.mpqco_proxy();

  // Reference for the first layer (its input is the raw image batch):
  // ‖conv(x, w+Δ) − conv(x, w)‖² / N.
  auto* conv = m.quant_layers[0].layer;
  const clado::nn::Tensor& w = conv->weight_param().value;
  for (std::int64_t b = 0; b < 2; ++b) {
    clado::nn::Tensor wq = w;
    wq += engine.delta(0, b);
    // Bias cancels in the difference, so linear_map on the delta is exact.
    m.net->forward(batch.images);  // refresh stashed inputs
    const clado::nn::Tensor diff = conv->linear_map_on_last_input(engine.delta(0, b));
    const double expected =
        static_cast<double>(diff.sq_norm()) / static_cast<double>(batch.images.size(0));
    EXPECT_NEAR(proxy[0][static_cast<std::size_t>(b)], expected,
                1e-6 + 1e-4 * std::abs(expected));
    // And the linear map itself matches forwarding the perturbed weights.
    const clado::nn::Tensor y1 = conv->linear_map_on_last_input(w);
    const clado::nn::Tensor y2 = conv->linear_map_on_last_input(wq);
    double direct = 0.0;
    for (std::int64_t k = 0; k < y1.numel(); ++k) {
      direct += std::pow(static_cast<double>(y2[k]) - y1[k], 2);
    }
    EXPECT_NEAR(direct / static_cast<double>(batch.images.size(0)), expected,
                1e-5 + 1e-3 * expected);
  }
}

TEST(MatrixMasks, KeepDiagonal) {
  clado::nn::Tensor g({4, 4}, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  const auto d = keep_diagonal(g);
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(d.at({i, j}), i == j ? g.at({i, j}) : 0.0F);
    }
  }
}

TEST(MatrixMasks, MaskInterBlockZeroesOnlyCrossBlockEntries) {
  // 3 layers x 2 bits; layers 0,1 share a block, layer 2 is separate.
  clado::nn::Tensor g({6, 6}, 1.0F);
  const auto masked = mask_inter_block(g, {0, 0, 1}, 2);
  // Intra-block (layers 0-1) survives.
  EXPECT_EQ(masked.at({0, 2}), 1.0F);
  EXPECT_EQ(masked.at({3, 1}), 1.0F);
  // Cross-block (layer 0 vs 2) is zeroed.
  EXPECT_EQ(masked.at({0, 4}), 0.0F);
  EXPECT_EQ(masked.at({5, 2}), 0.0F);
  // Diagonal blocks survive.
  EXPECT_EQ(masked.at({4, 5}), 1.0F);
  EXPECT_EQ(masked.at({4, 4}), 1.0F);
}

TEST(MatrixMasks, MaskRejectsSizeMismatch) {
  clado::nn::Tensor g({6, 6});
  EXPECT_THROW(mask_inter_block(g, {0, 1}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace clado::core
