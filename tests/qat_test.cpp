#include "clado/core/qat_runner.h"

#include <gtest/gtest.h>

#include "clado/core/algorithms.h"
#include "clado/models/zoo.h"
#include "test_models_util.h"

namespace clado::core {
namespace {

using clado::testing::make_tiny_model;
using clado::testing::Model;
using clado::tensor::Rng;

clado::data::SynthCvDataset tiny_dataset(std::uint64_t seed) {
  clado::data::SynthCvDataset::Config c;
  c.num_classes = 5;
  c.image_size = 8;
  c.seed = seed;
  return clado::data::SynthCvDataset(c);
}

struct QatFixture {
  Rng rng{17};
  Model model;
  clado::data::SynthCvDataset train_set;
  clado::data::SynthCvDataset val_set;

  QatFixture() : model(make_tiny_model(rng)), train_set(tiny_dataset(1)), val_set(tiny_dataset(2)) {
    // Short pretraining so QAT has a meaningful starting point.
    clado::models::ZooConfig cfg;
    cfg.num_classes = 5;
    cfg.train_size = 1024;
    cfg.val_size = 256;
    clado::models::train_model(model, train_set, val_set, cfg, /*epochs=*/8, /*lr=*/0.05F);
  }
};

Assignment all_bits(const Model& model, int bits, int index) {
  Assignment a;
  a.choice.assign(model.quant_layers.size(), index);
  a.bits.assign(model.quant_layers.size(), bits);
  return a;
}

TEST(QatRunner, RecoversAccuracyAtLowBits) {
  QatFixture f;
  const double fp32 = f.model.accuracy_on(f.val_set, 256);
  ASSERT_GT(fp32, 0.4);  // pretraining worked (tiny 4-layer model)

  QatConfig cfg;
  cfg.epochs = 3;
  cfg.train_size = 512;
  cfg.val_size = 256;
  const QatResult res = run_qat(f.model, all_bits(f.model, 2, 0), f.train_set, f.val_set, cfg);
  // 2-bit PTQ on a tiny model degrades; QAT must not make things worse and
  // should stay clearly above the 20% chance level of 5 classes.
  EXPECT_GE(res.post_qat_accuracy, res.pre_qat_accuracy - 0.02);
  EXPECT_GT(res.post_qat_accuracy, 0.25);
}

TEST(QatRunner, EightBitIsNearLossless) {
  QatFixture f;
  const double fp32 = f.model.accuracy_on(f.val_set, 256);
  QatConfig cfg;
  cfg.epochs = 1;
  cfg.train_size = 256;
  cfg.val_size = 256;
  const QatResult res = run_qat(f.model, all_bits(f.model, 8, 1), f.train_set, f.val_set, cfg);
  EXPECT_NEAR(res.pre_qat_accuracy, fp32, 0.05);
}

TEST(QatRunner, RestoresFp32WeightsAndTransforms) {
  QatFixture f;
  std::vector<clado::nn::Tensor> before;
  for (auto& l : f.model.quant_layers) before.push_back(l.layer->weight_param().value);
  const double acc_before = f.model.accuracy_on(f.val_set, 256);

  QatConfig cfg;
  cfg.epochs = 1;
  cfg.train_size = 256;
  cfg.val_size = 256;
  run_qat(f.model, all_bits(f.model, 2, 0), f.train_set, f.val_set, cfg);

  for (std::size_t i = 0; i < before.size(); ++i) {
    const auto& now = f.model.quant_layers[i].layer->weight_param().value;
    for (std::int64_t k = 0; k < before[i].numel(); ++k) {
      ASSERT_EQ(now[k], before[i][k]) << "layer " << i;
    }
  }
  EXPECT_DOUBLE_EQ(f.model.accuracy_on(f.val_set, 256), acc_before);
}

TEST(QatRunner, PreQatMatchesDirectPtqEvaluation) {
  QatFixture f;
  const std::vector<int> bits(f.model.quant_layers.size(), 2);
  double direct = 0.0;
  {
    clado::quant::WeightSnapshot snap(f.model.quant_layers);
    clado::quant::bake_weights(f.model.quant_layers, bits, f.model.scheme);
    direct = f.model.accuracy_on(f.val_set, 256);
  }
  QatConfig cfg;
  cfg.epochs = 1;
  cfg.train_size = 64;
  cfg.val_size = 256;
  const QatResult res = run_qat(f.model, all_bits(f.model, 2, 0), f.train_set, f.val_set, cfg);
  EXPECT_DOUBLE_EQ(res.pre_qat_accuracy, direct);
}

}  // namespace
}  // namespace clado::core
