#include "clado/core/report.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace clado::core {
namespace {

TEST(AsciiTable, AlignsColumns) {
  AsciiTable table({"name", "value"});
  table.add_row({"x", "1.00"});
  table.add_row({"longer-name", "2.50"});
  const std::string out = table.to_string();
  std::istringstream is(out);
  std::string header, rule, row1, row2;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_NE(header.find("name"), std::string::npos);
  EXPECT_NE(rule.find("---"), std::string::npos);
  // All data lines share the same column offset for the second column.
  EXPECT_EQ(row1.size(), row2.size());
  EXPECT_NE(row2.find("2.50"), std::string::npos);
}

TEST(AsciiTable, RejectsWrongWidth) {
  AsciiTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(AsciiTable, NumberFormatting) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::num(3.0, 0), "3");
  EXPECT_EQ(AsciiTable::pct(0.7342, 2), "73.42");
  EXPECT_EQ(AsciiTable::pct(1.0, 1), "100.0");
}

TEST(WriteCsv, RoundTrips) {
  const auto dir = std::filesystem::temp_directory_path() / "clado_report_test";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "sub" / "out.csv").string();
  write_csv(path, {"a", "b"}, {{"1", "2"}, {"3", "4"}});
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "a,b");
  std::getline(is, line);
  EXPECT_EQ(line, "1,2");
  std::getline(is, line);
  EXPECT_EQ(line, "3,4");
  std::filesystem::remove_all(dir);
}

TEST(Quartiles, OddSample) {
  const Quartiles q = quartiles({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(q.median, 3.0);
  EXPECT_DOUBLE_EQ(q.q25, 2.0);
  EXPECT_DOUBLE_EQ(q.q75, 4.0);
}

TEST(Quartiles, SingleValue) {
  const Quartiles q = quartiles({2.5});
  EXPECT_DOUBLE_EQ(q.q25, 2.5);
  EXPECT_DOUBLE_EQ(q.median, 2.5);
  EXPECT_DOUBLE_EQ(q.q75, 2.5);
}

TEST(Quartiles, EmptyIsZero) {
  const Quartiles q = quartiles({});
  EXPECT_DOUBLE_EQ(q.median, 0.0);
}

TEST(Quartiles, MedianOfEvenSampleInterpolates) {
  const Quartiles q = quartiles({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(q.median, 2.5);
}

TEST(AsciiChart, PlacesExtremePoints) {
  ChartSeries s{"acc", {0.0, 1.0}, {10.0, 20.0}, 'o'};
  const std::string chart = render_ascii_chart({s}, 40, 10, "title", "x", "y");
  std::vector<std::string> lines;
  std::istringstream is(chart);
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  // Title, 10 grid rows, axis, x labels, legend.
  ASSERT_GE(lines.size(), 13U);
  EXPECT_EQ(lines[0], "title");
  // y_max row carries the max label and the top-right point.
  EXPECT_NE(lines[1].find("20"), std::string::npos);
  EXPECT_EQ(lines[1].back(), 'o');
  // y_min row carries the min label and the bottom-left point.
  EXPECT_NE(lines[10].find("10"), std::string::npos);
  EXPECT_NE(lines[10].find('o'), std::string::npos);
  // Legend mentions the series.
  EXPECT_NE(chart.find("o = acc"), std::string::npos);
}

TEST(AsciiChart, InterpolationDotsBetweenPoints) {
  ChartSeries s{"line", {0.0, 10.0}, {0.0, 0.0}, '*'};
  const std::string chart = render_ascii_chart({s}, 30, 6);
  // A horizontal segment should leave '.' marks between the endpoints.
  EXPECT_NE(chart.find('.'), std::string::npos);
}

TEST(AsciiChart, OverlappingSeriesMarkedWithHash) {
  ChartSeries a{"a", {0.0, 1.0}, {0.0, 1.0}, 'a'};
  ChartSeries b{"b", {0.0, 1.0}, {0.0, 1.0}, 'b'};
  const std::string chart = render_ascii_chart({a, b}, 30, 8);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(AsciiChart, EmptyAndDegenerateInputs) {
  EXPECT_EQ(render_ascii_chart({}, 30, 8), "(empty chart)\n");
  // Single point, zero ranges: must not divide by zero.
  ChartSeries s{"pt", {5.0}, {7.0}, 'x'};
  EXPECT_NO_THROW(render_ascii_chart({s}, 30, 8));
  EXPECT_THROW(render_ascii_chart({s}, 4, 2), std::invalid_argument);
  ChartSeries bad{"bad", {1.0, 2.0}, {1.0}, 'x'};
  EXPECT_THROW(render_ascii_chart({bad}, 30, 8), std::invalid_argument);
}

}  // namespace
}  // namespace clado::core
