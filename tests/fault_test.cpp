#include "clado/fault/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "clado/core/algorithms.h"
#include "clado/core/sensitivity.h"
#include "clado/obs/obs.h"
#include "test_models_util.h"

namespace clado::fault {
namespace {

using clado::models::Model;
using clado::tensor::Rng;

// The fault registry is process-global; every test starts and ends disarmed
// so ordering cannot leak armed sites or hit counters between tests.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm_all(); }
  void TearDown() override { disarm_all(); }
};

TEST_F(FaultTest, SiteNamesAreStable) {
  // These names are API: env vars and obs counter names are derived from
  // them, so renaming one silently orphans configured experiments.
  EXPECT_STREQ(site_name(Site::kIoWrite), "io_write");
  EXPECT_STREQ(site_name(Site::kIoRead), "io_read");
  EXPECT_STREQ(site_name(Site::kNanLoss), "nan_loss");
  EXPECT_STREQ(site_name(Site::kPoolTask), "pool_task");
  EXPECT_STREQ(site_name(Site::kSolverOracle), "solver_oracle");
}

TEST_F(FaultTest, DisarmedSiteIsInertAndUncounted) {
  EXPECT_FALSE(armed(Site::kNanLoss));
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(should_inject(Site::kNanLoss));
  EXPECT_NO_THROW(maybe_throw(Site::kIoWrite, "never"));
  EXPECT_EQ(poison_nan(Site::kNanLoss, 1.5), 1.5);
  // Hit accounting is skipped entirely while disarmed (the zero-cost path).
  EXPECT_EQ(hit_count(Site::kNanLoss), 0U);
  EXPECT_EQ(injected_count(Site::kNanLoss), 0U);
}

TEST_F(FaultTest, OneShotFiresExactlyOnNthHit) {
  arm_one_shot(Site::kNanLoss, 3);
  EXPECT_TRUE(armed(Site::kNanLoss));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(should_inject(Site::kNanLoss));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(hit_count(Site::kNanLoss), 6U);
  EXPECT_EQ(injected_count(Site::kNanLoss), 1U);
}

TEST_F(FaultTest, FromFiresOnEveryHitFromNthOnward) {
  arm_from(Site::kIoRead, 4);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(should_inject(Site::kIoRead));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, true, true}));
  EXPECT_EQ(injected_count(Site::kIoRead), 3U);
}

TEST_F(FaultTest, ProbabilityModeIsDeterministicPerSeed) {
  const auto pattern_for = [](std::uint64_t seed) {
    disarm_all();
    set_seed(seed);
    arm_probability(Site::kPoolTask, 0.5);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(should_inject(Site::kPoolTask));
    return fired;
  };
  const auto a = pattern_for(123);
  const auto b = pattern_for(123);
  EXPECT_EQ(a, b);
  // p = 0.5 over 64 hits: all-fire or none-fire would mean the hash is
  // degenerate, not that we got unlucky (probability ~2^-64).
  const auto fired_count = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired_count, 0);
  EXPECT_LT(fired_count, 64);
}

TEST_F(FaultTest, ProbabilityExtremesAreExact) {
  arm_probability(Site::kSolverOracle, 0.0);
  for (int i = 0; i < 32; ++i) EXPECT_FALSE(should_inject(Site::kSolverOracle));
  arm_probability(Site::kSolverOracle, 1.0);
  for (int i = 0; i < 32; ++i) EXPECT_TRUE(should_inject(Site::kSolverOracle));
}

TEST_F(FaultTest, ArmSpecParsesAllThreeGrammars) {
  arm_spec(Site::kNanLoss, "2");
  EXPECT_FALSE(should_inject(Site::kNanLoss));
  EXPECT_TRUE(should_inject(Site::kNanLoss));
  EXPECT_FALSE(should_inject(Site::kNanLoss));

  arm_spec(Site::kNanLoss, "from:2");
  EXPECT_FALSE(should_inject(Site::kNanLoss));
  EXPECT_TRUE(should_inject(Site::kNanLoss));
  EXPECT_TRUE(should_inject(Site::kNanLoss));

  EXPECT_NO_THROW(arm_spec(Site::kNanLoss, "prob:0.5"));
}

TEST_F(FaultTest, ArmSpecRejectsGarbageLoudly) {
  // Same strictness policy as env_int_strict: a typo must not silently run
  // a different experiment.
  EXPECT_THROW(arm_spec(Site::kNanLoss, ""), std::invalid_argument);
  EXPECT_THROW(arm_spec(Site::kNanLoss, "garbage"), std::invalid_argument);
  EXPECT_THROW(arm_spec(Site::kNanLoss, "0"), std::invalid_argument);
  EXPECT_THROW(arm_spec(Site::kNanLoss, "3x"), std::invalid_argument);
  EXPECT_THROW(arm_spec(Site::kNanLoss, "from:"), std::invalid_argument);
  EXPECT_THROW(arm_spec(Site::kNanLoss, "from:0"), std::invalid_argument);
  EXPECT_THROW(arm_spec(Site::kNanLoss, "prob:"), std::invalid_argument);
  EXPECT_THROW(arm_spec(Site::kNanLoss, "prob:2"), std::invalid_argument);
  EXPECT_THROW(arm_spec(Site::kNanLoss, "prob:0.5q"), std::invalid_argument);
  EXPECT_FALSE(armed(Site::kNanLoss));
}

TEST_F(FaultTest, MaybeThrowTagsTheSiteInItsMessage) {
  arm_from(Site::kSolverOracle, 1);
  try {
    maybe_throw(Site::kSolverOracle, "oracle down");
    FAIL() << "maybe_throw did not throw";
  } catch (const FaultInjected& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("oracle down"), std::string::npos);
    EXPECT_NE(what.find("[fault:solver_oracle]"), std::string::npos);
  }
}

TEST_F(FaultTest, PoisonNanReturnsQuietNan) {
  arm_from(Site::kNanLoss, 1);
  EXPECT_TRUE(std::isnan(poison_nan(Site::kNanLoss, 1.5)));
}

TEST_F(FaultTest, InjectionsAreVisibleInObsCounters) {
  const std::int64_t before = clado::obs::counter("fault.injected.io_write").value();
  arm_one_shot(Site::kIoWrite, 1);
  EXPECT_TRUE(should_inject(Site::kIoWrite));
  EXPECT_EQ(clado::obs::counter("fault.injected.io_write").value(), before + 1);
}

TEST_F(FaultTest, DisarmAllResetsEverything) {
  arm_from(Site::kIoRead, 1);
  ASSERT_TRUE(should_inject(Site::kIoRead));
  disarm_all();
  EXPECT_FALSE(armed(Site::kIoRead));
  EXPECT_EQ(hit_count(Site::kIoRead), 0U);
  EXPECT_EQ(injected_count(Site::kIoRead), 0U);
  EXPECT_FALSE(should_inject(Site::kIoRead));
}

// ---------------------------------------------------------------------------
// End-to-end: with each site armed one-at-a-time, the pipeline (checkpointed
// sweep -> PSD projection -> solver chain) must still return a feasible
// assignment — the injected failure is absorbed by the matching recovery
// layer, never surfaced to the caller.
// ---------------------------------------------------------------------------

struct PipelineRun {
  std::vector<int> choice;
  double bytes = 0.0;
  double target = 0.0;
  bool used_fallback = false;
};

PipelineRun run_pipeline(const std::filesystem::path& ckpt_dir) {
  Rng rng(31);
  Model m = clado::testing::make_tiny_model(rng);
  auto batch = clado::testing::make_noise_batch(rng);
  const double budget = 0.5 * m.uniform_size_bytes(8);
  clado::core::PipelineOptions opt;
  opt.sweep_threads = 2;  // exercise the pool dispatch path
  clado::core::MpqPipeline pipe(m, std::move(batch), opt);
  pipe.engine().set_checkpoint({ckpt_dir.string(), 1});
  const auto a = pipe.assign(clado::core::Algorithm::kClado, budget);
  return {a.choice, a.bytes, a.target_bytes, a.used_fallback};
}

TEST_F(FaultTest, PipelineSurvivesEverySiteArmedOnce) {
  const auto dir = std::filesystem::temp_directory_path() / "clado_fault_pipeline";
  std::filesystem::remove_all(dir);

  // Unfaulted reference (fresh checkpoint dir, so nothing is resumed).
  std::filesystem::create_directories(dir);
  const PipelineRun ref = run_pipeline(dir);
  ASSERT_EQ(ref.choice.size(), 4U);
  ASSERT_LE(ref.bytes, ref.target + 1e-6);

  // Only the sites the solver pipeline actually crosses; the serve-path
  // sites (accept, frame_decode, registry_swap) are exercised end-to-end
  // by fleet_test and the live fault-soak drill instead.
  const Site pipeline_sites[] = {Site::kIoWrite, Site::kIoRead, Site::kNanLoss,
                                 Site::kPoolTask, Site::kSolverOracle};
  for (const Site site : pipeline_sites) {
    SCOPED_TRACE(site_name(site));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    disarm_all();

    if (site == Site::kIoRead) {
      // The read path only runs when a checkpoint exists; seed one from an
      // identically-constructed engine so the fault corrupts a real load.
      Rng rng(31);
      Model m = clado::testing::make_tiny_model(rng);
      clado::core::SensitivityEngine seed_engine(m, clado::testing::make_noise_batch(rng));
      seed_engine.set_checkpoint({dir.string(), 1});
      seed_engine.full_matrix({}, 1);
    }

    arm_one_shot(site, 1);
    const PipelineRun faulted = run_pipeline(dir);
    // The fault must actually have fired — a survived run that never hit
    // its site would vacuously pass.
    EXPECT_EQ(injected_count(site), 1U);
    disarm_all();

    EXPECT_EQ(faulted.choice.size(), 4U);
    EXPECT_LE(faulted.bytes, faulted.target + 1e-6);
    if (site != Site::kSolverOracle) {
      // Recovery re-measures or retries deterministic work, so every
      // pre-solver fault yields the exact reference assignment.
      EXPECT_EQ(faulted.choice, ref.choice);
      EXPECT_FALSE(faulted.used_fallback);
    } else {
      // The degradation chain served this one; provenance must say so.
      EXPECT_TRUE(faulted.used_fallback);
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace clado::fault
