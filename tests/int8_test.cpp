#include "clado/quant/int8.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "clado/nn/layers.h"
#include "clado/tensor/ops.h"

namespace clado::quant {
namespace {

using clado::tensor::Rng;
using clado::tensor::Tensor;

TEST(QParams, ZeroIsExactlyRepresentable) {
  for (auto [lo, hi] : {std::pair{-1.0F, 1.0F}, {0.0F, 5.0F}, {-3.0F, 0.5F}, {0.2F, 0.9F}}) {
    const QParams p = choose_qparams(lo, hi);
    // q(0) = zero_point must be in int8 range, and dequant(zp) == 0.
    EXPECT_GE(p.zero_point, -128);
    EXPECT_LE(p.zero_point, 127);
    const float zero = (static_cast<float>(p.zero_point) - p.zero_point) * p.scale;
    EXPECT_EQ(zero, 0.0F);
  }
}

// Regression: the degenerate-range guard used an ABSOLUTE 1e-8 nudge, which
// rounds away entirely at large magnitudes (lo + 1e-8F == lo for |lo| >= ~1
// in fp32). A constant large-magnitude tensor then got scale == 0 and every
// code quantized through a division by zero to inf/NaN.
TEST(QParams, DegenerateRangeAtLargeMagnitudeYieldsFiniteScale) {
  for (const float v : {1e6F, -1e6F, 3e7F, -4.5e8F, 1.0F, -1.0F}) {
    const QParams p = choose_qparams(v, v);
    EXPECT_TRUE(std::isfinite(p.scale)) << "v=" << v;
    EXPECT_GT(p.scale, 0.0F) << "v=" << v;
    EXPECT_GE(p.zero_point, -128);
    EXPECT_LE(p.zero_point, 127);
  }
  // The original absolute epsilon is preserved for genuinely tiny ranges.
  const QParams tiny = choose_qparams(0.0F, 0.0F);
  EXPECT_GT(tiny.scale, 0.0F);
  EXPECT_TRUE(std::isfinite(tiny.scale));
}

TEST(QuantizeInt8, LargeMagnitudeConstantTensorRoundTripsFinite) {
  const Tensor x({8}, 2.5e7F);  // constant => min == max == 2.5e7
  const QTensor q = quantize_int8_minmax(x);
  EXPECT_TRUE(std::isfinite(q.scale));
  EXPECT_GT(q.scale, 0.0F);
  const Tensor back = dequantize(q);
  for (std::int64_t i = 0; i < back.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(back[i])) << i;
    // A one-point range is representable to within one quantization step.
    EXPECT_NEAR(back[i], x[i], q.scale + std::abs(x[i]) * 1e-5F) << i;
  }
}

TEST(QuantizeInt8, RoundTripErrorBoundedByHalfStep) {
  Rng rng(1);
  const Tensor x = Tensor::uniform({4096}, rng, -2.0F, 3.0F);
  const QTensor q = quantize_int8_minmax(x);
  const Tensor back = dequantize(q);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::abs(back[i] - x[i]), 0.5F * q.scale + 1e-6F);
  }
}

TEST(QuantizeInt8, SaturatesOutOfRange) {
  QParams p{0.1F, 0};
  const Tensor x({2}, std::vector<float>{100.0F, -100.0F});
  const QTensor q = quantize_int8(x, p);
  EXPECT_EQ(q.data[0], 127);
  EXPECT_EQ(q.data[1], -128);
}

TEST(GemmS8, MatchesFloatReferenceOnDequantizedValues) {
  Rng rng(2);
  const std::int64_t m = 7, k = 33, n = 5;
  const Tensor a = Tensor::uniform({m, k}, rng, -1.0F, 2.0F);
  const Tensor b = Tensor::uniform({n, k}, rng, -0.5F, 0.5F);
  const QTensor qa = quantize_int8_minmax(a);
  const QTensor qb = quantize_int8_minmax(b);

  std::vector<std::int32_t> acc(static_cast<std::size_t>(m * n));
  gemm_s8s8_s32(m, n, k, qa.data.data(), qa.zero_point, qb.data.data(), qb.zero_point,
                acc.data());

  // Reference: float GEMM over the dequantized tensors. The int32 path
  // must match exactly (same discrete values, exact integer arithmetic).
  const Tensor da = dequantize(qa);
  const Tensor db = dequantize(qb);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double ref = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        ref += static_cast<double>(da.data()[i * k + p]) * db.data()[j * k + p];
      }
      const double got =
          static_cast<double>(acc[static_cast<std::size_t>(i * n + j)]) * qa.scale * qb.scale;
      EXPECT_NEAR(got, ref, 1e-4 * std::max(1.0, std::abs(ref))) << i << "," << j;
    }
  }
}

TEST(QLinear, MatchesFloatLinearOnQuantizedOperands) {
  Rng rng(3);
  const std::int64_t m = 4, k = 16, n = 6;
  const Tensor x = Tensor::randn({m, k}, rng);
  const Tensor w = Tensor::randn({n, k}, rng, 0.3F);
  std::vector<float> bias(static_cast<std::size_t>(n));
  for (auto& b : bias) b = static_cast<float>(rng.normal());

  const QTensor qx = quantize_int8_minmax(x);
  const QTensor qw = quantize_int8_minmax(w);
  const Tensor got = qlinear(qx, qw, bias.data());

  // Reference: fp32 linear on the dequantized operands.
  const Tensor dx = dequantize(qx);
  const Tensor dw = dequantize(qw);
  Tensor ref({m, n});
  clado::tensor::gemm(false, true, m, n, k, 1.0F, dx.data(), dw.data(), 0.0F, ref.data());
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) ref.data()[i * n + j] += bias[static_cast<std::size_t>(j)];
  }
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-4F + 1e-4F * std::abs(ref[i]));
  }
}

TEST(QConv2d, MatchesFloatConvOnQuantizedOperands) {
  Rng rng(4);
  const std::int64_t n = 2, c = 3, h = 6, wdt = 6, o = 4, kern = 3, stride = 2, pad = 1;
  const Tensor x = Tensor::randn({n, c, h, wdt}, rng);
  const Tensor w = Tensor::randn({o, c, kern, kern}, rng, 0.2F);
  std::vector<float> bias(static_cast<std::size_t>(o), 0.1F);

  const QTensor qx = quantize_int8_minmax(x);
  const QTensor qw = quantize_int8_minmax(w);
  const Tensor got = qconv2d(qx, qw, bias.data(), stride, pad);

  // Reference: float Conv2d over the dequantized tensors.
  clado::nn::Conv2d ref_conv(c, o, kern, stride, pad, 1, /*bias=*/true);
  ref_conv.weight_param().value = dequantize(qw);
  std::vector<clado::nn::ParamRef> params;
  ref_conv.collect_params("", params);
  for (std::size_t i = 0; i < bias.size(); ++i) {
    params[1].param->value[static_cast<std::int64_t>(i)] = bias[i];
  }
  const Tensor ref = ref_conv.forward(dequantize(qx));

  ASSERT_EQ(got.shape(), ref.shape());
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 2e-4F + 2e-4F * std::abs(ref[i])) << i;
  }
}

TEST(QConv2d, PaddingUsesZeroPointNotZeroCode) {
  // With an all-positive input range the zero point sits at -128; padded
  // positions must dequantize to real 0, not to scale * 128.
  Rng rng(5);
  Tensor x({1, 1, 2, 2});
  for (auto& v : x.flat()) v = static_cast<float>(rng.uniform(1.0, 2.0));
  Tensor w({1, 1, 3, 3}, 1.0F);
  const QTensor qx = quantize_int8_minmax(x);
  const QTensor qw = quantize_int8_minmax(w);
  const Tensor got = qconv2d(qx, qw, nullptr, 1, 1);

  clado::nn::Conv2d ref_conv(1, 1, 3, 1, 1, 1, false);
  ref_conv.weight_param().value = dequantize(qw);
  const Tensor ref = ref_conv.forward(dequantize(qx));
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-3F + 1e-3F * std::abs(ref[i]));
  }
}

// Geometry sweep: the int8 conv must match the float reference across
// strides, paddings, and kernel sizes (each with its own padding edge
// cases in the int8 im2col).
class QConvGeometryTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(QConvGeometryTest, MatchesFloatReference) {
  const auto [kern, stride, pad] = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(kern * 10 + stride * 3 + pad));
  const std::int64_t n = 2, c = 2, h = 8, wdt = 7, o = 3;
  const Tensor x = Tensor::randn({n, c, h, wdt}, rng);
  const Tensor w = Tensor::randn({o, c, kern, kern}, rng, 0.3F);
  const QTensor qx = quantize_int8_minmax(x);
  const QTensor qw = quantize_int8_minmax(w);
  const Tensor got = qconv2d(qx, qw, nullptr, stride, pad);

  clado::nn::Conv2d ref_conv(c, o, kern, stride, pad, 1, false);
  ref_conv.weight_param().value = dequantize(qw);
  const Tensor ref = ref_conv.forward(dequantize(qx));
  ASSERT_EQ(got.shape(), ref.shape());
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_NEAR(got[i], ref[i], 3e-4F + 3e-4F * std::abs(ref[i])) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, QConvGeometryTest,
                         ::testing::Values(std::tuple{1L, 1L, 0L}, std::tuple{3L, 1L, 1L},
                                           std::tuple{3L, 2L, 1L}, std::tuple{5L, 2L, 2L},
                                           std::tuple{3L, 1L, 0L}, std::tuple{1L, 2L, 0L}));

// Regression: qconv2d used to accept stride <= 0 (division by zero in
// conv_out_size) and kernels larger than the padded input (negative output
// extent cast through size_t into a huge allocation).
TEST(QConv2d, RejectsInvalidGeometry) {
  Rng rng(7);
  const Tensor x = Tensor::randn({1, 2, 5, 5}, rng);
  const Tensor w = Tensor::randn({3, 2, 3, 3}, rng);
  const QTensor qx = quantize_int8_minmax(x);
  const QTensor qw = quantize_int8_minmax(w);

  EXPECT_THROW(qconv2d(qx, qw, nullptr, /*stride=*/0, /*pad=*/1), std::invalid_argument);
  EXPECT_THROW(qconv2d(qx, qw, nullptr, /*stride=*/-2, /*pad=*/1), std::invalid_argument);
  EXPECT_THROW(qconv2d(qx, qw, nullptr, /*stride=*/1, /*pad=*/-1), std::invalid_argument);

  const Tensor wbig = Tensor::randn({3, 2, 7, 7}, rng);  // 7 > 5 + 2*0
  const QTensor qwbig = quantize_int8_minmax(wbig);
  EXPECT_THROW(qconv2d(qx, qwbig, nullptr, /*stride=*/1, /*pad=*/0), std::invalid_argument);
  // With enough padding the same kernel is legal again.
  EXPECT_NO_THROW(qconv2d(qx, qwbig, nullptr, /*stride=*/1, /*pad=*/1));
}

TEST(Int8EndToEnd, FakeQuantAccuracyClaimHoldsInIntegerArithmetic) {
  // The statement the kernels certify: running a linear layer in pure
  // integer arithmetic reproduces the fake-quant float simulation.
  Rng rng(6);
  const std::int64_t m = 8, k = 32, n = 10;
  const Tensor x = Tensor::randn({m, k}, rng);
  const Tensor w = Tensor::randn({n, k}, rng, 0.2F);

  const QTensor qx = quantize_int8_minmax(x);
  const QTensor qw = quantize_int8_minmax(w);

  // Fake-quant simulation: dequantized operands through float GEMM.
  const Tensor fx = dequantize(qx);
  const Tensor fw = dequantize(qw);
  Tensor fake({m, n});
  clado::tensor::gemm(false, true, m, n, k, 1.0F, fx.data(), fw.data(), 0.0F, fake.data());

  const Tensor integer = qlinear(qx, qw, nullptr);
  for (std::int64_t i = 0; i < fake.numel(); ++i) {
    EXPECT_NEAR(integer[i], fake[i], 1e-4F + 1e-4F * std::abs(fake[i]));
  }
}

}  // namespace
}  // namespace clado::quant
