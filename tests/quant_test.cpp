#include "clado/quant/quantizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "clado/quant/qat.h"
#include "clado/nn/layers.h"
#include "clado/tensor/rng.h"

namespace clado::quant {
namespace {

using clado::tensor::Rng;
using clado::tensor::Tensor;

TEST(SymmetricQuant, ExactGridValuesAreFixedPoints) {
  // Values already on the quantization grid must survive unchanged.
  const float scale = 0.5F;
  Tensor w({4}, std::vector<float>{-1.0F, -0.5F, 0.0F, 1.5F});
  const Tensor q = quantize_symmetric(w, 4, scale);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(q[i], w[i]);
}

TEST(SymmetricQuant, ClipsToRepresentableRange) {
  // 2-bit signed: levels {-2, -1, 0, 1} x scale.
  const float scale = 1.0F;
  Tensor w({3}, std::vector<float>{-10.0F, 10.0F, 0.4F});
  const Tensor q = quantize_symmetric(w, 2, scale);
  EXPECT_FLOAT_EQ(q[0], -2.0F);
  EXPECT_FLOAT_EQ(q[1], 1.0F);
  EXPECT_FLOAT_EQ(q[2], 0.0F);
}

TEST(SymmetricQuant, LevelCountRespectsBitWidth) {
  Rng rng(1);
  const Tensor w = Tensor::randn({4096}, rng);
  for (int bits : {2, 3, 4}) {
    const Tensor q = quantize_symmetric_mse(w, bits);
    std::set<float> levels(q.flat().begin(), q.flat().end());
    EXPECT_LE(static_cast<int>(levels.size()), 1 << bits) << bits << " bits";
  }
}

TEST(SymmetricQuant, MseScaleBeatsNaiveMaxScale) {
  // On heavy-tailed weights, clipping outliers must reduce MSE at low bits.
  Rng rng(2);
  Tensor w = Tensor::randn({4096}, rng);
  w[0] = 12.0F;  // outlier
  const int bits = 3;
  const float qmax = std::ldexp(1.0F, bits - 1) - 1.0F;
  float amax = 0.0F;
  for (float v : w.flat()) amax = std::max(amax, std::abs(v));
  const double naive = quant_mse_symmetric(w, bits, amax / qmax);
  const double tuned = quant_mse_symmetric(w, bits, mse_optimal_scale_symmetric(w, bits));
  EXPECT_LT(tuned, naive * 0.8);
}

TEST(SymmetricQuant, MseScaleIsGridOptimal) {
  // The returned scale must be at least as good as every grid candidate.
  Rng rng(3);
  const Tensor w = Tensor::randn({1024}, rng);
  const int bits = 4;
  const float best = mse_optimal_scale_symmetric(w, bits);
  const double best_mse = quant_mse_symmetric(w, bits, best);
  for (float s = best * 0.9F; s <= best * 1.1F; s += best * 0.02F) {
    // Allow tiny numerical slack around the grid optimum.
    EXPECT_GE(quant_mse_symmetric(w, bits, s) + 1e-9, best_mse * 0.98);
  }
}

class BitMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(BitMonotoneTest, HigherBitsNeverWorseMse) {
  const int bits = GetParam();
  Rng rng(4 + bits);
  const Tensor w = Tensor::randn({2048}, rng);
  const Tensor q_low = quantize_symmetric_mse(w, bits);
  const Tensor q_high = quantize_symmetric_mse(w, bits + 1);
  double mse_low = 0.0, mse_high = 0.0;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    mse_low += std::pow(static_cast<double>(q_low[i]) - w[i], 2);
    mse_high += std::pow(static_cast<double>(q_high[i]) - w[i], 2);
  }
  EXPECT_LE(mse_high, mse_low * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Bits2To7, BitMonotoneTest, ::testing::Range(2, 8));

TEST(PerChannelAffine, ConstantChannelIsExact) {
  Tensor w({2, 4}, std::vector<float>{3.0F, 3.0F, 3.0F, 3.0F, -1.0F, 0.0F, 1.0F, 2.0F});
  const Tensor q = quantize_per_channel_affine_mse(w, 4);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(q[i], 3.0F);
}

TEST(PerChannelAffine, BeatsPerTensorOnScaleImbalancedChannels) {
  // Channel 0 in [-0.01, 0.01], channel 1 in [-10, 10]: a shared scale
  // destroys channel 0.
  Rng rng(5);
  Tensor w({2, 512});
  for (std::int64_t i = 0; i < 512; ++i) {
    w.data()[i] = static_cast<float>(rng.normal()) * 0.01F;
    w.data()[512 + i] = static_cast<float>(rng.normal()) * 10.0F;
  }
  const Tensor q_pc = quantize_per_channel_affine_mse(w, 4);
  const Tensor q_pt = quantize_symmetric_mse(w, 4);
  double mse_pc = 0.0, mse_pt = 0.0;
  for (std::int64_t i = 0; i < 512; ++i) {  // channel 0 error only
    mse_pc += std::pow(static_cast<double>(q_pc[i]) - w[i], 2);
    mse_pt += std::pow(static_cast<double>(q_pt[i]) - w[i], 2);
  }
  EXPECT_LT(mse_pc, mse_pt * 0.1);
}

TEST(PerChannelAffine, AsymmetricRangeUsesAllLevels) {
  // All-positive weights: affine can spend every level on [min, max].
  Rng rng(6);
  Tensor w({1, 2048});
  for (auto& v : w.flat()) v = static_cast<float>(rng.uniform(1.0, 2.0));
  const Tensor q_affine = quantize_per_channel_affine_mse(w, 3);
  const Tensor q_sym = quantize_symmetric_mse(w, 3);
  double mse_a = 0.0, mse_s = 0.0;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    mse_a += std::pow(static_cast<double>(q_affine[i]) - w[i], 2);
    mse_s += std::pow(static_cast<double>(q_sym[i]) - w[i], 2);
  }
  EXPECT_LT(mse_a, mse_s * 0.5);
}

TEST(PerChannelSymmetric, BeatsPerTensorOnImbalancedChannels) {
  Rng rng(21);
  Tensor w({2, 512});
  for (std::int64_t i = 0; i < 512; ++i) {
    w.data()[i] = static_cast<float>(rng.normal()) * 0.01F;
    w.data()[512 + i] = static_cast<float>(rng.normal()) * 10.0F;
  }
  const Tensor q_pc = quantize_per_channel_symmetric_mse(w, 4);
  const Tensor q_pt = quantize_symmetric_mse(w, 4);
  double mse_pc = 0.0, mse_pt = 0.0;
  for (std::int64_t i = 0; i < 512; ++i) {  // the small channel
    mse_pc += std::pow(static_cast<double>(q_pc[i]) - w[i], 2);
    mse_pt += std::pow(static_cast<double>(q_pt[i]) - w[i], 2);
  }
  EXPECT_LT(mse_pc, mse_pt * 0.1);
}

TEST(PerChannelSymmetric, ZeroChannelStaysZero) {
  Tensor w({2, 4}, std::vector<float>{0, 0, 0, 0, 1, -1, 2, -2});
  const Tensor q = quantize_per_channel_symmetric_mse(w, 4);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(q[i], 0.0F);
}

TEST(PerTensorAffine, HandlesAllPositiveRange) {
  Rng rng(22);
  Tensor w({2048});
  for (auto& v : w.flat()) v = static_cast<float>(rng.uniform(2.0, 3.0));
  const Tensor q_aff = quantize_per_tensor_affine_mse(w, 3);
  const Tensor q_sym = quantize_symmetric_mse(w, 3);
  double mse_a = 0.0, mse_s = 0.0;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    mse_a += std::pow(static_cast<double>(q_aff[i]) - w[i], 2);
    mse_s += std::pow(static_cast<double>(q_sym[i]) - w[i], 2);
  }
  EXPECT_LT(mse_a, mse_s * 0.3);
}

TEST(PerTensorAffine, ConstantTensorIsExact) {
  Tensor w({16}, 1.25F);
  const Tensor q = quantize_per_tensor_affine_mse(w, 4);
  for (float v : q.flat()) EXPECT_FLOAT_EQ(v, 1.25F);
}

TEST(AffineQParams, ZeroPointStaysOnIntegerGrid) {
  const float levels = 7.0F;  // 3-bit
  // All-positive range: without the zero-nudge, zp = round(-2/scale) < 0
  // would escape the grid.
  const AffineQParams pos = affine_qparams(2.0F, 3.0F, 3);
  EXPECT_EQ(pos.zero_point, 0.0F);
  EXPECT_EQ(pos.lo, 0.0F);
  EXPECT_GE(pos.hi, 3.0F);
  // All-negative range: zp must clamp to the top of the grid.
  const AffineQParams neg = affine_qparams(-3.0F, -2.0F, 3);
  EXPECT_EQ(neg.zero_point, levels);
  EXPECT_EQ(neg.hi, 0.0F);
  EXPECT_LE(neg.lo, -3.0F);
  // Straddling range: zp lands strictly inside the grid.
  const AffineQParams mid = affine_qparams(-1.0F, 1.0F, 3);
  EXPECT_GE(mid.zero_point, 0.0F);
  EXPECT_LE(mid.zero_point, levels);
  EXPECT_EQ(mid.zero_point, std::nearbyint(mid.zero_point));
  // Representable endpoints are consistent with (q - zp) * scale.
  EXPECT_FLOAT_EQ(mid.lo, (0.0F - mid.zero_point) * mid.scale);
  EXPECT_FLOAT_EQ(mid.hi, (levels - mid.zero_point) * mid.scale);
}

TEST(PerChannelAffine, AllPositiveChannelIsCovered) {
  // Regression: the affine fake-quant used an unclamped zero-point, so an
  // all-positive channel dequantized onto a grid shifted off the data —
  // every value came back with error about the size of the range.
  Rng rng(24);
  Tensor w({2, 512});
  for (std::int64_t i = 0; i < 512; ++i) {
    w.data()[i] = static_cast<float>(rng.uniform(2.0, 5.0));  // channel 0: positive
    w.data()[512 + i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  const Tensor q = quantize_per_channel_affine_mse(w, 3);
  float max_err = 0.0F;
  for (std::int64_t i = 0; i < 512; ++i) {
    max_err = std::max(max_err, std::abs(q[i] - w[i]));
  }
  // The zero-nudged 3-bit grid over [0, 5] has step 5/7 ~ 0.71; the broken
  // unclamped grid left errors around the full range (~2).
  EXPECT_LT(max_err, 0.6F);
}

class AllSchemesTest : public ::testing::TestWithParam<WeightScheme> {};

TEST_P(AllSchemesTest, DispatchesAndReducesErrorWithBits) {
  Rng rng(23);
  const Tensor w = Tensor::randn({4, 256}, rng);
  auto mse_at = [&](int bits) {
    const Tensor q = quantize_weight(w, bits, GetParam());
    double mse = 0.0;
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      mse += std::pow(static_cast<double>(q[i]) - w[i], 2);
    }
    return mse;
  };
  EXPECT_LT(mse_at(8), mse_at(4));
  EXPECT_LT(mse_at(4), mse_at(2));
  EXPECT_LT(mse_at(8), 1e-3 * w.numel());  // 8-bit is near-lossless
}

INSTANTIATE_TEST_SUITE_P(Schemes, AllSchemesTest,
                         ::testing::Values(WeightScheme::kPerTensorSymmetric,
                                           WeightScheme::kPerChannelAffine,
                                           WeightScheme::kPerChannelSymmetric,
                                           WeightScheme::kPerTensorAffine));

TEST(Quantizer, RejectsBadBits) {
  Tensor w({4}, 1.0F);
  EXPECT_THROW(quantize_symmetric_mse(w, 0), std::invalid_argument);
  EXPECT_THROW(quantize_symmetric_mse(w, 17), std::invalid_argument);
  EXPECT_THROW(quantize_symmetric(w, 4, -1.0F), std::invalid_argument);
}

TEST(Quantizer, WeightBytes) {
  EXPECT_DOUBLE_EQ(weight_bytes(1000, 8), 1000.0);
  EXPECT_DOUBLE_EQ(weight_bytes(1000, 4), 500.0);
  EXPECT_DOUBLE_EQ(weight_bytes(1000, 2), 250.0);
}

// --- assignment helpers (qat.h) -------------------------------------------

std::vector<clado::nn::QuantLayerRef> two_layers(clado::nn::Linear& a, clado::nn::Linear& b) {
  std::vector<clado::nn::QuantLayerRef> refs;
  a.collect_quant_layers("a", refs);
  b.collect_quant_layers("b", refs);
  return refs;
}

TEST(WeightSnapshot, RestoresOnDestruction) {
  Rng rng(7);
  clado::nn::Linear a(8, 8), b(8, 8);
  a.init(rng);
  b.init(rng);
  const Tensor wa = a.weight_param().value;
  {
    auto refs = two_layers(a, b);
    WeightSnapshot snap(refs);
    bake_weights(refs, {2, 2}, WeightScheme::kPerTensorSymmetric);
    // 2-bit baking must change something.
    bool changed = false;
    for (std::int64_t i = 0; i < wa.numel(); ++i) {
      if (a.weight_param().value[i] != wa[i]) changed = true;
    }
    EXPECT_TRUE(changed);
  }
  for (std::int64_t i = 0; i < wa.numel(); ++i) EXPECT_EQ(a.weight_param().value[i], wa[i]);
}

TEST(WeightSnapshot, DismissKeepsQuantizedWeights) {
  Rng rng(8);
  clado::nn::Linear a(8, 8), b(8, 8);
  a.init(rng);
  b.init(rng);
  auto refs = two_layers(a, b);
  Tensor baked;
  {
    WeightSnapshot snap(refs);
    bake_weights(refs, {2, 4}, WeightScheme::kPerTensorSymmetric);
    baked = a.weight_param().value;
    snap.dismiss();
  }
  for (std::int64_t i = 0; i < baked.numel(); ++i) {
    EXPECT_EQ(a.weight_param().value[i], baked[i]);
  }
}

TEST(BakeWeights, ZeroBitsLeavesLayerFp32) {
  Rng rng(9);
  clado::nn::Linear a(8, 8), b(8, 8);
  a.init(rng);
  b.init(rng);
  const Tensor wa = a.weight_param().value;
  auto refs = two_layers(a, b);
  bake_weights(refs, {0, 2}, WeightScheme::kPerTensorSymmetric);
  for (std::int64_t i = 0; i < wa.numel(); ++i) EXPECT_EQ(a.weight_param().value[i], wa[i]);
}

TEST(BakeWeights, SizeMismatchThrows) {
  Rng rng(10);
  clado::nn::Linear a(4, 4), b(4, 4);
  auto refs = two_layers(a, b);
  EXPECT_THROW(bake_weights(refs, {8}, WeightScheme::kPerTensorSymmetric),
               std::invalid_argument);
}

TEST(FakeQuant, ForwardQuantizedBackwardStraightThrough) {
  Rng rng(11);
  clado::nn::Linear fc(4, 4, /*bias=*/false);
  fc.init(rng);
  std::vector<clado::nn::QuantLayerRef> refs;
  fc.collect_quant_layers("fc", refs);
  install_fake_quant(refs, {2}, WeightScheme::kPerTensorSymmetric);

  const Tensor x = Tensor::randn({2, 4}, rng);
  const Tensor y_fake = fc.forward(x);

  // Output must equal the output with baked 2-bit weights.
  const Tensor w_fp = fc.weight_param().value;
  fc.weight_param().value = quantize_symmetric_mse(w_fp, 2);
  clear_fake_quant(refs);
  const Tensor y_baked = fc.forward(x);
  for (std::int64_t i = 0; i < y_fake.numel(); ++i) EXPECT_FLOAT_EQ(y_fake[i], y_baked[i]);
  fc.weight_param().value = w_fp;

  // Gradient accumulates on the fp32 master weight (STE): nonzero grads.
  install_fake_quant(refs, {2}, WeightScheme::kPerTensorSymmetric);
  fc.weight_param().zero_grad();
  fc.forward(x);
  fc.backward(Tensor::randn({2, 4}, rng));
  EXPECT_GT(fc.weight_param().grad.sq_norm(), 0.0F);
  clear_fake_quant(refs);
}

TEST(AssignmentBytes, MatchesManualSum) {
  Rng rng(12);
  clado::nn::Linear a(16, 8), b(8, 4);  // 128 and 32 weights
  auto refs = two_layers(a, b);
  EXPECT_DOUBLE_EQ(assignment_bytes(refs, {4, 8}), 128 * 0.5 + 32 * 1.0);
  EXPECT_DOUBLE_EQ(uniform_bytes(refs, 8), 160.0);
  EXPECT_DOUBLE_EQ(uniform_bytes(refs, 2), 40.0);
}

}  // namespace
}  // namespace clado::quant
