#include "clado/quant/act_quant.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "clado/tensor/rng.h"

namespace clado::quant {
namespace {

using clado::tensor::Rng;
using clado::tensor::Tensor;

TEST(ActFakeQuant, BypassIsIdentity) {
  Rng rng(1);
  ActFakeQuant aq(8);
  const Tensor x = Tensor::randn({2, 8}, rng);
  const Tensor y = aq.forward(x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(ActFakeQuant, ObserveTracksRunningMinMax) {
  ActFakeQuant aq(8);
  aq.set_mode(ActQuantMode::kObserve);
  aq.forward(Tensor({2}, std::vector<float>{-1.0F, 2.0F}));
  aq.forward(Tensor({2}, std::vector<float>{-3.0F, 1.0F}));
  aq.freeze_from_observed();
  EXPECT_TRUE(aq.calibrated());
  EXPECT_LE(aq.lo(), -2.9F);
  EXPECT_GE(aq.hi(), 1.9F);
}

TEST(ActFakeQuant, QuantizeWithoutCalibrationPassesThrough) {
  Rng rng(2);
  ActFakeQuant aq(8);
  aq.set_mode(ActQuantMode::kQuantize);
  const Tensor x = Tensor::randn({4}, rng);
  const Tensor y = aq.forward(x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(ActFakeQuant, QuantizeSnapsToGridAndClips) {
  ActFakeQuant aq(2);  // 4 levels
  aq.set_mode(ActQuantMode::kObserve);
  aq.forward(Tensor({2}, std::vector<float>{0.0F, 3.0F}));
  aq.freeze_from_observed();
  aq.set_mode(ActQuantMode::kQuantize);

  const Tensor y = aq.forward(Tensor({4}, std::vector<float>{-5.0F, 0.4F, 2.1F, 99.0F}));
  std::set<float> levels(y.flat().begin(), y.flat().end());
  EXPECT_LE(levels.size(), 4U);
  EXPECT_GE(y.min(), aq.lo() - 1e-5F);
  EXPECT_LE(y.max(), aq.hi() + 1e-5F);
}

TEST(ActFakeQuant, ZeroIsExactlyRepresentable) {
  ActFakeQuant aq(8);
  aq.set_mode(ActQuantMode::kObserve);
  aq.forward(Tensor({2}, std::vector<float>{0.13F, 7.7F}));  // all-positive range
  aq.freeze_from_observed();
  aq.set_mode(ActQuantMode::kQuantize);
  const Tensor y = aq.forward(Tensor({1}, std::vector<float>{0.0F}));
  EXPECT_FLOAT_EQ(y[0], 0.0F);  // ReLU-style sparsity must survive
}

TEST(ActFakeQuant, EightBitErrorIsSmall) {
  Rng rng(3);
  ActFakeQuant aq(8);
  const Tensor x = Tensor::uniform({4096}, rng, -1.0F, 3.0F);
  aq.set_mode(ActQuantMode::kObserve);
  aq.forward(x);
  aq.freeze_from_observed();
  aq.set_mode(ActQuantMode::kQuantize);
  const Tensor y = aq.forward(x);
  double max_err = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    max_err = std::max(max_err, std::abs(static_cast<double>(y[i]) - x[i]));
  }
  // Half a step of (range 4.0 / 255 levels) plus slack.
  EXPECT_LT(max_err, 4.0 / 255.0);
}

TEST(ActFakeQuant, SteMasksClippedPositions) {
  ActFakeQuant aq(4);
  aq.set_mode(ActQuantMode::kObserve);
  aq.forward(Tensor({2}, std::vector<float>{-1.0F, 1.0F}));
  aq.freeze_from_observed();
  aq.set_mode(ActQuantMode::kQuantize);

  const Tensor x({3}, std::vector<float>{-10.0F, 0.0F, 10.0F});
  aq.forward(x);
  const Tensor g = aq.backward(Tensor({3}, 1.0F));
  EXPECT_EQ(g[0], 0.0F);  // below range: clipped, no gradient
  EXPECT_EQ(g[1], 1.0F);  // inside: straight through
  EXPECT_EQ(g[2], 0.0F);  // above range
}

TEST(ActFakeQuant, BackwardInBypassIsIdentity) {
  Rng rng(4);
  ActFakeQuant aq(8);
  const Tensor g = Tensor::randn({5}, rng);
  const Tensor out = aq.backward(g);
  for (std::int64_t i = 0; i < g.numel(); ++i) EXPECT_EQ(out[i], g[i]);
}

class ActBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(ActBitsTest, ErrorShrinksWithBits) {
  const int bits = GetParam();
  Rng rng(5);
  const Tensor x = Tensor::uniform({2048}, rng, -2.0F, 2.0F);
  auto mse_at = [&](int b) {
    ActFakeQuant aq(b);
    aq.set_mode(ActQuantMode::kObserve);
    aq.forward(x);
    aq.freeze_from_observed();
    aq.set_mode(ActQuantMode::kQuantize);
    const Tensor y = aq.forward(x);
    double mse = 0.0;
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      mse += std::pow(static_cast<double>(y[i]) - x[i], 2);
    }
    return mse;
  };
  EXPECT_LT(mse_at(bits + 1), mse_at(bits) * 0.6);
}

INSTANTIATE_TEST_SUITE_P(Bits2To6, ActBitsTest, ::testing::Range(2, 7));

// --- observer variants -----------------------------------------------------

Tensor outlier_batch(Rng& rng, std::int64_t n = 8192) {
  Tensor x = Tensor::randn({n}, rng);  // bulk ~N(0,1)
  x[0] = 60.0F;                        // extreme outliers
  x[1] = -45.0F;
  return x;
}

double quant_mse(ActFakeQuant& aq, const Tensor& bulk) {
  const Tensor y = aq.forward(bulk);
  double mse = 0.0;
  for (std::int64_t i = 0; i < bulk.numel(); ++i) {
    mse += std::pow(static_cast<double>(y[i]) - bulk[i], 2);
  }
  return mse / static_cast<double>(bulk.numel());
}

TEST(Observers, PercentileClipsOutliers) {
  Rng rng(10);
  const Tensor x = outlier_batch(rng);
  ActFakeQuant minmax(4, ObserverKind::kMinMax);
  ActFakeQuant pct(4, ObserverKind::kPercentile, 0.995);
  for (auto* aq : {&minmax, &pct}) {
    aq->set_mode(ActQuantMode::kObserve);
    aq->forward(x);
    aq->freeze_from_observed();
    aq->set_mode(ActQuantMode::kQuantize);
  }
  // The percentile range must be far tighter than the outlier-driven one.
  EXPECT_LT(pct.hi(), minmax.hi() * 0.3F);
  // And the bulk MSE far lower.
  Tensor bulk = x;
  bulk[0] = 0.0F;
  bulk[1] = 0.0F;
  EXPECT_LT(quant_mse(pct, bulk), quant_mse(minmax, bulk) * 0.2);
}

TEST(Observers, MseObserverBeatsMinMaxOnOutliers) {
  Rng rng(11);
  const Tensor x = outlier_batch(rng);
  ActFakeQuant minmax(4, ObserverKind::kMinMax);
  ActFakeQuant mse(4, ObserverKind::kMse);
  for (auto* aq : {&minmax, &mse}) {
    aq->set_mode(ActQuantMode::kObserve);
    aq->forward(x);
    aq->freeze_from_observed();
    aq->set_mode(ActQuantMode::kQuantize);
  }
  Tensor bulk = x;
  bulk[0] = 0.0F;
  bulk[1] = 0.0F;
  EXPECT_LT(quant_mse(mse, bulk), quant_mse(minmax, bulk) * 0.5);
}

TEST(Observers, AllAgreeOnCleanUniformData) {
  Rng rng(12);
  const Tensor x = Tensor::uniform({8192}, rng, -1.0F, 1.0F);
  std::vector<double> errs;
  for (auto kind : {ObserverKind::kMinMax, ObserverKind::kPercentile, ObserverKind::kMse}) {
    ActFakeQuant aq(8, kind);
    aq.set_mode(ActQuantMode::kObserve);
    aq.forward(x);
    aq.freeze_from_observed();
    aq.set_mode(ActQuantMode::kQuantize);
    errs.push_back(quant_mse(aq, x));
  }
  // Without outliers the three observers land on similar ranges.
  for (double e : errs) EXPECT_LT(e, errs[0] * 4.0 + 1e-12);
}

TEST(Observers, ResetObserverClearsCalibration) {
  Rng rng(13);
  ActFakeQuant aq(8, ObserverKind::kPercentile);
  aq.set_mode(ActQuantMode::kObserve);
  aq.forward(Tensor::randn({256}, rng));
  aq.freeze_from_observed();
  EXPECT_TRUE(aq.calibrated());
  aq.reset_observer();
  EXPECT_FALSE(aq.calibrated());
  // Quantize mode without calibration is a pass-through again.
  aq.set_mode(ActQuantMode::kQuantize);
  const Tensor x = Tensor::randn({8}, rng);
  const Tensor y = aq.forward(x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Observers, DeterministicReservoir) {
  Rng rng_a(14);
  Rng rng_b(14);
  ActFakeQuant a(6, ObserverKind::kPercentile);
  ActFakeQuant b(6, ObserverKind::kPercentile);
  for (int i = 0; i < 5; ++i) {
    a.set_mode(ActQuantMode::kObserve);
    b.set_mode(ActQuantMode::kObserve);
    a.forward(Tensor::randn({4096}, rng_a));
    b.forward(Tensor::randn({4096}, rng_b));
  }
  a.freeze_from_observed();
  b.freeze_from_observed();
  EXPECT_EQ(a.scale(), b.scale());
  EXPECT_EQ(a.lo(), b.lo());
  EXPECT_EQ(a.hi(), b.hi());
}

TEST(Observers, Names) {
  EXPECT_STREQ(observer_name(ObserverKind::kMinMax), "minmax");
  EXPECT_STREQ(observer_name(ObserverKind::kPercentile), "percentile");
  EXPECT_STREQ(observer_name(ObserverKind::kMse), "mse");
}

}  // namespace
}  // namespace clado::quant
