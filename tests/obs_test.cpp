#include "clado/obs/obs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace clado::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Minimal recursive-descent JSON validator: accepts exactly the grammar of
// objects/arrays/strings/numbers/true/false/null. Enough to prove the
// exporters emit parseable JSON without pulling in a parser dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_for_testing(); }
  void TearDown() override {
    set_trace_path({});
    reset_for_testing();
  }
};

TEST_F(ObsTest, CounterAccumulatesAcrossThreads) {
  Counter& c = counter("test.counter");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kAdds);
  // Interning: the same name resolves to the same slot.
  EXPECT_EQ(&counter("test.counter"), &c);
  EXPECT_EQ(counter("test.counter").value(), kThreads * kAdds);
}

TEST_F(ObsTest, GaugeTracksLastAndMax) {
  Gauge& g = gauge("test.gauge");
  g.set(3.0);
  g.set(7.5);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 7.5);
}

TEST_F(ObsTest, SpanAggregatesPerName) {
  {
    Span a("test.span");
    Span b("test.span");
    EXPECT_GE(b.close(), 0.0);
  }
  const SpanStat stat = span_stat("test.span");
  EXPECT_EQ(stat.count, 2);
  EXPECT_GE(stat.total_seconds, 0.0);
  EXPECT_EQ(span_stat("test.never_recorded").count, 0);
}

TEST_F(ObsTest, SpanCloseIsIdempotent) {
  Span s("test.idempotent");
  s.close();
  EXPECT_DOUBLE_EQ(s.close(), 0.0);
  EXPECT_EQ(span_stat("test.idempotent").count, 1);
}

TEST_F(ObsTest, MetricsTextListsEverything) {
  counter("test.c1").add(42);
  gauge("test.g1").set(1.5);
  { Span s("test.s1"); }
  const std::string text = metrics_text();
  EXPECT_NE(text.find("counter test.c1 42"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge test.g1"), std::string::npos) << text;
  EXPECT_NE(text.find("span test.s1 count 1"), std::string::npos) << text;
}

TEST_F(ObsTest, MetricsJsonIsValidJson) {
  counter("test.\"quoted\"\nname").add(1);
  gauge("test.g").set(-2.25);
  { Span s("test.s"); }
  const std::string json = metrics_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
}

TEST_F(ObsTest, TraceExportEmitsChromeEvents) {
  const std::string path = ::testing::TempDir() + "/clado_obs_trace.json";
  set_trace_path(path);
  ASSERT_TRUE(trace_enabled());
  {
    Span outer("test.trace_outer");
    Span inner("test.trace_inner");
  }
  ASSERT_TRUE(write_trace(path));
  const std::string json = read_file(path);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.trace_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test.trace_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, TracingDisabledBuffersNothing) {
  set_trace_path({});
  EXPECT_FALSE(trace_enabled());
  { Span s("test.untraced"); }
  const std::string path = ::testing::TempDir() + "/clado_obs_empty_trace.json";
  ASSERT_TRUE(write_trace(path));
  const std::string json = read_file(path);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_EQ(json.find("test.untraced"), std::string::npos);
  // Aggregates still maintained with tracing off.
  EXPECT_EQ(span_stat("test.untraced").count, 1);
  std::remove(path.c_str());
}

TEST_F(ObsTest, WriteMetricsPicksFormatByExtension) {
  counter("test.fmt").add(5);
  const std::string json_path = ::testing::TempDir() + "/clado_obs_metrics.json";
  const std::string text_path = ::testing::TempDir() + "/clado_obs_metrics.txt";
  ASSERT_TRUE(write_metrics(json_path));
  ASSERT_TRUE(write_metrics(text_path));
  EXPECT_TRUE(JsonChecker(read_file(json_path)).valid());
  EXPECT_NE(read_file(text_path).find("counter test.fmt 5"), std::string::npos);
  std::remove(json_path.c_str());
  std::remove(text_path.c_str());
}

TEST_F(ObsTest, TraceRingKeepsNewestAndCountsDropped) {
  const std::string path = ::testing::TempDir() + "/clado_obs_ring.json";
  set_trace_path(path);
  set_trace_capacity(3);
  for (int i = 0; i < 5; ++i) {
    Span s("test.ring" + std::to_string(i));
  }
  EXPECT_EQ(trace_dropped(), 2);
  ASSERT_TRUE(write_trace(path));
  const std::string json = read_file(path);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // Oldest two evicted, newest three retained.
  EXPECT_EQ(json.find("test.ring0"), std::string::npos);
  EXPECT_EQ(json.find("test.ring1"), std::string::npos);
  EXPECT_NE(json.find("test.ring2"), std::string::npos);
  EXPECT_NE(json.find("test.ring3"), std::string::npos);
  EXPECT_NE(json.find("test.ring4"), std::string::npos);
  // Evictions surface in both metric dumps.
  EXPECT_NE(metrics_text().find("counter trace.dropped 2"), std::string::npos);
  EXPECT_NE(metrics_json().find("\"trace.dropped\":2"), std::string::npos);
  // Aggregates are unaffected by ring eviction.
  EXPECT_EQ(span_stat("test.ring0").count, 1);
  set_trace_capacity(std::size_t{1} << 20);
  std::remove(path.c_str());
}

TEST_F(ObsTest, TraceRingPreservesChronologyAcrossWrap) {
  const std::string path = ::testing::TempDir() + "/clado_obs_ring_order.json";
  set_trace_path(path);
  set_trace_capacity(2);
  { Span s("test.order_a"); }
  { Span s("test.order_b"); }
  { Span s("test.order_c"); }
  ASSERT_TRUE(write_trace(path));
  const std::string json = read_file(path);
  const std::size_t pos_b = json.find("test.order_b");
  const std::size_t pos_c = json.find("test.order_c");
  ASSERT_NE(pos_b, std::string::npos);
  ASSERT_NE(pos_c, std::string::npos);
  EXPECT_LT(pos_b, pos_c) << "wrapped ring must export oldest-first";
  set_trace_capacity(std::size_t{1} << 20);
  std::remove(path.c_str());
}

TEST_F(ObsTest, ShrinkingCapacityEvictsOldestExisting) {
  const std::string path = ::testing::TempDir() + "/clado_obs_shrink.json";
  set_trace_path(path);
  set_trace_capacity(std::size_t{1} << 20);
  for (int i = 0; i < 4; ++i) {
    Span s("test.shrink" + std::to_string(i));
  }
  set_trace_capacity(1);
  EXPECT_EQ(trace_dropped(), 3);
  ASSERT_TRUE(write_trace(path));
  const std::string json = read_file(path);
  EXPECT_EQ(json.find("test.shrink0"), std::string::npos);
  EXPECT_NE(json.find("test.shrink3"), std::string::npos);
  set_trace_capacity(std::size_t{1} << 20);
  std::remove(path.c_str());
}

TEST_F(ObsTest, TraceScopeCapturesSpanTreeAndRedirects) {
  const std::string path = ::testing::TempDir() + "/clado_obs_scope.json";
  set_trace_path(path);  // tracing on, so redirection is observable
  {
    TraceScope scope;
    {
      Span outer("test.scope_outer");
      { Span inner("test.scope_inner"); }
    }
    ASSERT_EQ(scope.events().size(), 2u);
    // Close order: inner first (depth 1), then outer (depth 0).
    EXPECT_EQ(scope.events()[0].name, "test.scope_inner");
    EXPECT_EQ(scope.events()[0].depth, 1);
    EXPECT_EQ(scope.events()[1].name, "test.scope_outer");
    EXPECT_EQ(scope.events()[1].depth, 0);
    EXPECT_GE(scope.events()[1].dur_us, scope.events()[0].dur_us);
  }
  // Redirected events stay out of the global trace buffer...
  ASSERT_TRUE(write_trace(path));
  EXPECT_EQ(read_file(path).find("test.scope_outer"), std::string::npos);
  // ...but aggregates still update globally.
  EXPECT_EQ(span_stat("test.scope_outer").count, 1);
  EXPECT_EQ(span_stat("test.scope_inner").count, 1);
  std::remove(path.c_str());
}

TEST_F(ObsTest, TraceScopeBoundsCaptureAndCountsDrops) {
  TraceScope scope(2);
  { Span s("test.cap0"); }
  { Span s("test.cap1"); }
  { Span s("test.cap2"); }
  EXPECT_EQ(scope.events().size(), 2u);
  EXPECT_EQ(scope.dropped(), 1);
}

TEST_F(ObsTest, TraceScopeTakeEventsKeepsRecording) {
  TraceScope scope;
  { Span s("test.take_a"); }
  const auto first = scope.take_events();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].name, "test.take_a");
  EXPECT_TRUE(scope.events().empty());
  { Span s("test.take_b"); }
  ASSERT_EQ(scope.events().size(), 1u);
  EXPECT_EQ(scope.events()[0].name, "test.take_b");
}

TEST_F(ObsTest, TraceScopesNestNewestWins) {
  TraceScope outer;
  { Span s("test.nest_outer_span"); }
  {
    TraceScope inner;
    { Span s("test.nest_inner_span"); }
    ASSERT_EQ(inner.events().size(), 1u);
    EXPECT_EQ(inner.events()[0].name, "test.nest_inner_span");
  }
  { Span s("test.nest_outer_again"); }
  ASSERT_EQ(outer.events().size(), 2u);
  EXPECT_EQ(outer.events()[0].name, "test.nest_outer_span");
  EXPECT_EQ(outer.events()[1].name, "test.nest_outer_again");
}

TEST_F(ObsTest, TraceScopeIsPerThread) {
  TraceScope scope;
  std::thread other([] {
    Span s("test.other_thread_span");
  });
  other.join();
  { Span s("test.own_thread_span"); }
  ASSERT_EQ(scope.events().size(), 1u);
  EXPECT_EQ(scope.events()[0].name, "test.own_thread_span");
  EXPECT_EQ(span_stat("test.other_thread_span").count, 1);
}

TEST_F(ObsTest, ResetClearsWithoutInvalidatingHandles) {
  Counter& c = counter("test.reset");
  c.add(9);
  { Span s("test.reset_span"); }
  reset_for_testing();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(span_stat("test.reset_span").count, 0);
  c.add(1);  // the handle survived the reset
  EXPECT_EQ(counter("test.reset").value(), 1);
}

}  // namespace
}  // namespace clado::obs
