#include "clado/obs/obs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace clado::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Minimal recursive-descent JSON validator: accepts exactly the grammar of
// objects/arrays/strings/numbers/true/false/null. Enough to prove the
// exporters emit parseable JSON without pulling in a parser dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_for_testing(); }
  void TearDown() override {
    set_trace_path({});
    reset_for_testing();
  }
};

TEST_F(ObsTest, CounterAccumulatesAcrossThreads) {
  Counter& c = counter("test.counter");
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kAdds);
  // Interning: the same name resolves to the same slot.
  EXPECT_EQ(&counter("test.counter"), &c);
  EXPECT_EQ(counter("test.counter").value(), kThreads * kAdds);
}

TEST_F(ObsTest, GaugeTracksLastAndMax) {
  Gauge& g = gauge("test.gauge");
  g.set(3.0);
  g.set(7.5);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 7.5);
}

TEST_F(ObsTest, SpanAggregatesPerName) {
  {
    Span a("test.span");
    Span b("test.span");
    EXPECT_GE(b.close(), 0.0);
  }
  const SpanStat stat = span_stat("test.span");
  EXPECT_EQ(stat.count, 2);
  EXPECT_GE(stat.total_seconds, 0.0);
  EXPECT_EQ(span_stat("test.never_recorded").count, 0);
}

TEST_F(ObsTest, SpanCloseIsIdempotent) {
  Span s("test.idempotent");
  s.close();
  EXPECT_DOUBLE_EQ(s.close(), 0.0);
  EXPECT_EQ(span_stat("test.idempotent").count, 1);
}

TEST_F(ObsTest, MetricsTextListsEverything) {
  counter("test.c1").add(42);
  gauge("test.g1").set(1.5);
  { Span s("test.s1"); }
  const std::string text = metrics_text();
  EXPECT_NE(text.find("counter test.c1 42"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge test.g1"), std::string::npos) << text;
  EXPECT_NE(text.find("span test.s1 count 1"), std::string::npos) << text;
}

TEST_F(ObsTest, MetricsJsonIsValidJson) {
  counter("test.\"quoted\"\nname").add(1);
  gauge("test.g").set(-2.25);
  { Span s("test.s"); }
  const std::string json = metrics_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
}

TEST_F(ObsTest, TraceExportEmitsChromeEvents) {
  const std::string path = ::testing::TempDir() + "/clado_obs_trace.json";
  set_trace_path(path);
  ASSERT_TRUE(trace_enabled());
  {
    Span outer("test.trace_outer");
    Span inner("test.trace_inner");
  }
  ASSERT_TRUE(write_trace(path));
  const std::string json = read_file(path);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.trace_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test.trace_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, TracingDisabledBuffersNothing) {
  set_trace_path({});
  EXPECT_FALSE(trace_enabled());
  { Span s("test.untraced"); }
  const std::string path = ::testing::TempDir() + "/clado_obs_empty_trace.json";
  ASSERT_TRUE(write_trace(path));
  const std::string json = read_file(path);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_EQ(json.find("test.untraced"), std::string::npos);
  // Aggregates still maintained with tracing off.
  EXPECT_EQ(span_stat("test.untraced").count, 1);
  std::remove(path.c_str());
}

TEST_F(ObsTest, WriteMetricsPicksFormatByExtension) {
  counter("test.fmt").add(5);
  const std::string json_path = ::testing::TempDir() + "/clado_obs_metrics.json";
  const std::string text_path = ::testing::TempDir() + "/clado_obs_metrics.txt";
  ASSERT_TRUE(write_metrics(json_path));
  ASSERT_TRUE(write_metrics(text_path));
  EXPECT_TRUE(JsonChecker(read_file(json_path)).valid());
  EXPECT_NE(read_file(text_path).find("counter test.fmt 5"), std::string::npos);
  std::remove(json_path.c_str());
  std::remove(text_path.c_str());
}

TEST_F(ObsTest, ResetClearsWithoutInvalidatingHandles) {
  Counter& c = counter("test.reset");
  c.add(9);
  { Span s("test.reset_span"); }
  reset_for_testing();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(span_stat("test.reset_span").count, 0);
  c.add(1);  // the handle survived the reset
  EXPECT_EQ(counter("test.reset").value(), 1);
}

}  // namespace
}  // namespace clado::obs
