// clado::serve coverage: engine freezing, micro-batcher contracts
// (max_batch / max_delay_us), admission control (overload, deadlines,
// shutdown), drain semantics, batched-vs-single bit-identity, per-request
// trace capture, the wire protocol, and a socket round trip. The
// concurrency tests are the reason serve_test runs under TSan in CI.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "clado/obs/obs.h"
#include "clado/serve/engine.h"
#include "clado/serve/serve.h"
#include "clado/serve/socket.h"
#include "clado/serve/wire.h"
#include "clado/tensor/rng.h"
#include "test_models_util.h"

namespace {

using clado::serve::DeadlineClass;
using clado::serve::Engine;
using clado::serve::EngineSpec;
using clado::serve::Response;
using clado::serve::Server;
using clado::serve::ServerConfig;
using clado::serve::Status;
using clado::tensor::Rng;
using clado::tensor::Tensor;

std::shared_ptr<Engine> make_engine(std::vector<int> bits, int replicas,
                                    std::uint64_t seed = 7) {
  Rng rng(seed);
  auto model = clado::testing::make_tiny_model(rng);
  EngineSpec spec;
  spec.bits = std::move(bits);
  spec.replicas = replicas;
  spec.label = spec.bits.empty() ? "fp32" : "int";
  return std::make_shared<Engine>(std::move(model), std::move(spec));
}

Tensor make_sample(Rng& rng) { return Tensor::randn({3, 8, 8}, rng); }

ServerConfig paused_config(int workers, std::int64_t max_batch,
                           std::int64_t max_delay_us = 50'000) {
  ServerConfig cfg;
  cfg.workers = workers;
  cfg.max_batch = max_batch;
  cfg.max_delay_us = max_delay_us;
  cfg.start_paused = true;
  return cfg;
}

TEST(ServeEngine, FreezesAndInfers) {
  auto engine = make_engine({8, 8, 8, 8}, 2);
  EXPECT_EQ(engine->replicas(), 2);
  EXPECT_EQ(engine->num_classes(), 5);
  EXPECT_EQ(engine->sample_shape(), (clado::tensor::Shape{3, 8, 8}));
  EXPECT_EQ(engine->batchnorms_folded(), 0);  // tiny fixture has no BN layers

  Rng rng(11);
  const Tensor batch = Tensor::randn({4, 3, 8, 8}, rng);
  const Tensor logits = engine->infer(batch);
  EXPECT_EQ(logits.shape(), (clado::tensor::Shape{4, 5}));

  const std::int64_t cls = engine->predict(make_sample(rng));
  EXPECT_GE(cls, 0);
  EXPECT_LT(cls, 5);
}

TEST(ServeEngine, QuantizedWeightsSmallerThanFp32) {
  const auto fp32 = make_engine({}, 1);
  const auto int8 = make_engine({8, 8, 8, 8}, 1);
  const auto mixed = make_engine({2, 8, 2, 8}, 1);
  EXPECT_LT(int8->weight_bytes(), fp32->weight_bytes());
  EXPECT_LT(mixed->weight_bytes(), int8->weight_bytes());
}

TEST(ServeEngine, RejectsBadInputs) {
  auto engine = make_engine({}, 1);
  Rng rng(3);
  EXPECT_THROW(engine->infer(Tensor::randn({4, 1, 8, 8}, rng)), std::invalid_argument);
  EXPECT_THROW(engine->infer(Tensor::randn({3, 8, 8}, rng)), std::invalid_argument);
  EXPECT_THROW(engine->infer(Tensor::randn({1, 3, 8, 8}, rng), 5), std::invalid_argument);
  EXPECT_THROW(Engine(clado::testing::make_tiny_model(rng), EngineSpec{{}, 0, "bad"}),
               std::invalid_argument);
}

TEST(ServeEngine, ReplicasAgree) {
  auto engine = make_engine({8, 8, 8, 8}, 3);
  Rng rng(5);
  const Tensor batch = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor a = engine->infer(batch, 0);
  for (int r = 1; r < 3; ++r) {
    const Tensor b = engine->infer(batch, r);
    ASSERT_EQ(a.shape(), b.shape());
    for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]) << "replica " << r;
  }
}

TEST(ServeRegistry, PutGetErase) {
  clado::serve::EngineRegistry registry;
  EXPECT_EQ(registry.get("int8"), nullptr);
  auto engine = registry.put("int8", make_engine({8, 8, 8, 8}, 1));
  EXPECT_EQ(registry.get("int8"), engine);
  // Hot swap: old handle stays alive for holders, lookup sees the new one.
  auto swapped = registry.put("int8", make_engine({2, 2, 2, 2}, 1));
  EXPECT_EQ(registry.get("int8"), swapped);
  EXPECT_NE(engine, swapped);
  EXPECT_EQ(registry.keys().size(), 1u);
  EXPECT_TRUE(registry.erase("int8"));
  EXPECT_FALSE(registry.erase("int8"));
}

TEST(ServeServer, BatchedResultsBitIdenticalToSingle) {
  // Two engines frozen from the same seed are bit-identical; one serves
  // batches, the other answers single-sample references.
  auto served = make_engine({8, 8, 8, 8}, 1);
  auto reference = make_engine({8, 8, 8, 8}, 1);

  Server server(served, paused_config(/*workers=*/1, /*max_batch=*/8));
  Rng rng(123);
  std::vector<Tensor> samples;
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 6; ++i) {
    samples.push_back(make_sample(rng));
    futures.push_back(server.submit(samples.back()));
  }
  server.resume();
  for (int i = 0; i < 6; ++i) {
    Response r = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_GT(r.batch_size, 1) << "requests were not coalesced";
    Tensor one = samples[static_cast<std::size_t>(i)];
    one.reshape_inplace({1, 3, 8, 8});
    const Tensor expected = reference->infer(one);
    ASSERT_EQ(r.logits.numel(), expected.numel());
    for (std::int64_t k = 0; k < expected.numel(); ++k) {
      EXPECT_EQ(r.logits[k], expected[k]) << "sample " << i << " logit " << k;
    }
    EXPECT_EQ(r.predicted, expected.argmax());
  }
}

TEST(ServeServer, HonorsMaxBatch) {
  auto engine = make_engine({}, 1);
  Server server(engine, paused_config(1, /*max_batch=*/2));
  Rng rng(9);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(server.submit(make_sample(rng)));
  server.resume();
  for (auto& f : futures) {
    const Response r = f.get();
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_LE(r.batch_size, 2);
    EXPECT_GE(r.batch_size, 1);
  }
}

TEST(ServeServer, MaxDelayFlushesPartialBatch) {
  auto engine = make_engine({}, 1);
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 64;  // never reachable with one request
  cfg.max_delay_us = 1000;
  Server server(engine, cfg);
  Rng rng(17);
  auto future = server.submit(make_sample(rng));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(10)), std::future_status::ready)
      << "single request was held hostage by an unfilled batch";
  const Response r = future.get();
  EXPECT_EQ(r.status, Status::kOk) << r.error;
  EXPECT_EQ(r.batch_size, 1);
}

TEST(ServeServer, DeadlineExpiredRequestsNeverRun) {
  auto engine = make_engine({}, 1);
  Server server(engine, paused_config(1, 8));
  Rng rng(21);
  const std::int64_t completed_before = clado::obs::counter("serve.completed").value();
  auto doomed = server.submit(make_sample(rng), /*deadline_us=*/1);
  auto alive = server.submit(make_sample(rng));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.resume();

  const Response dead = doomed.get();
  EXPECT_EQ(dead.status, Status::kDeadlineExpired);
  EXPECT_EQ(dead.predicted, -1);
  EXPECT_TRUE(dead.logits.empty());

  const Response ok = alive.get();
  EXPECT_EQ(ok.status, Status::kOk) << ok.error;
  EXPECT_EQ(ok.batch_size, 1) << "expired request reached the engine batch";
  server.drain();
  EXPECT_EQ(clado::obs::counter("serve.completed").value(), completed_before + 1);
}

TEST(ServeServer, OverloadRejectsImmediately) {
  auto engine = make_engine({}, 1);
  ServerConfig cfg = paused_config(1, 8);
  cfg.queue_capacity = 2;
  Server server(engine, cfg);
  Rng rng(31);
  auto a = server.submit(make_sample(rng));
  auto b = server.submit(make_sample(rng));
  auto rejected = server.submit(make_sample(rng));
  // The paused server cannot make progress, so a blocking submit would
  // deadlock this test: readiness here proves admission never blocks.
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(rejected.get().status, Status::kRejectedOverload);
  server.resume();
  EXPECT_EQ(a.get().status, Status::kOk);
  EXPECT_EQ(b.get().status, Status::kOk);
}

TEST(ServeServer, DrainCompletesAdmittedWork) {
  auto engine = make_engine({}, 2);
  Server server(engine, paused_config(2, 4));
  Rng rng(41);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(server.submit(make_sample(rng)));
  server.drain();  // never resumed: drain itself must flush the backlog
  for (auto& f : futures) EXPECT_EQ(f.get().status, Status::kOk);
  EXPECT_EQ(server.submit(make_sample(rng)).get().status, Status::kShutdown);
  EXPECT_GE(server.latency_summary().count, 10);
  EXPECT_GE(server.latency_summary().p99_ms, server.latency_summary().p50_ms);
}

TEST(ServeServer, BestEffortShedEarlyAndEvictedByInteractive) {
  auto engine = make_engine({}, 1);
  ServerConfig cfg = paused_config(1, 8);
  cfg.queue_capacity = 2;
  cfg.best_effort_cap = 2;
  Server server(engine, cfg);
  Rng rng(111);
  auto be1 = server.submit(make_sample(rng), 0, DeadlineClass::kBestEffort);
  auto be2 = server.submit(make_sample(rng), 0, DeadlineClass::kBestEffort);
  EXPECT_EQ(server.queue_depth(), 2);

  // At the cap, best-effort is shed immediately even though interactive
  // work would still be admitted by eviction.
  auto be3 = server.submit(make_sample(rng), 0, DeadlineClass::kBestEffort);
  ASSERT_EQ(be3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(be3.get().status, Status::kRejectedOverload);

  // Interactive at a hard-full queue evicts the NEWEST queued best-effort.
  auto interactive = server.submit(make_sample(rng));
  ASSERT_EQ(be2.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const Response evicted = be2.get();
  EXPECT_EQ(evicted.status, Status::kRejectedOverload);
  EXPECT_NE(evicted.error.find("evicted"), std::string::npos) << evicted.error;
  EXPECT_EQ(server.queue_depth(), 2);

  server.resume();
  EXPECT_EQ(be1.get().status, Status::kOk);
  EXPECT_EQ(interactive.get().status, Status::kOk);
}

TEST(ServeServer, BestEffortCapValidationAndAutoDefault) {
  ServerConfig cfg;
  cfg.workers = 1;
  ASSERT_EQ(cfg.best_effort_cap, 0);
  Server server(make_engine({}, 1), cfg);
  EXPECT_EQ(server.config().best_effort_cap, cfg.queue_capacity * 3 / 4);

  ServerConfig bad = cfg;
  bad.best_effort_cap = bad.queue_capacity + 1;
  EXPECT_THROW(Server(make_engine({}, 1), bad), std::invalid_argument);

  ASSERT_EQ(::setenv("CLADO_SERVE_BE_QUEUE_CAP", "7", 1), 0);
  EXPECT_EQ(ServerConfig::from_env().best_effort_cap, 7);
  ASSERT_EQ(::setenv("CLADO_SERVE_BE_QUEUE_CAP", "most", 1), 0);
  EXPECT_THROW(ServerConfig::from_env(), std::invalid_argument);
  ::unsetenv("CLADO_SERVE_BE_QUEUE_CAP");
}

TEST(ServeServer, InvalidShapeRejectedUpFront) {
  auto engine = make_engine({}, 1);
  Server server(engine, paused_config(1, 8));
  Rng rng(51);
  auto future = server.submit(Tensor::randn({1, 8, 8}, rng));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const Response r = future.get();
  EXPECT_EQ(r.status, Status::kInvalidInput);
  EXPECT_NE(r.error.find("[3, 8, 8]"), std::string::npos) << r.error;
}

TEST(ServeServer, CapturesPerRequestTraces) {
  auto engine = make_engine({}, 1);
  ServerConfig cfg = paused_config(1, 8);
  cfg.capture_traces = true;
  Server server(engine, cfg);
  Rng rng(61);
  auto future = server.submit(make_sample(rng));
  server.resume();
  const Response r = future.get();
  ASSERT_EQ(r.status, Status::kOk) << r.error;
  ASSERT_FALSE(r.trace.empty());
  bool saw_batch = false;
  bool saw_forward = false;
  for (const auto& event : r.trace) {
    if (event.name == "serve/batch") {
      saw_batch = true;
      EXPECT_EQ(event.depth, 0);
    }
    if (event.name == "serve/engine_forward") {
      saw_forward = true;
      EXPECT_GE(event.depth, 1) << "forward should nest inside serve/batch";
    }
  }
  EXPECT_TRUE(saw_batch);
  EXPECT_TRUE(saw_forward);
}

TEST(ServeServer, ConcurrentClientsUnderLoad) {
  auto engine = make_engine({8, 8, 8, 8}, 2);
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 4;
  cfg.max_delay_us = 500;
  Server server(engine, cfg);

  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  std::vector<std::thread> clients;
  std::vector<int> ok_counts(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + static_cast<std::uint64_t>(c));
      for (int i = 0; i < kPerClient; ++i) {
        Response r = server.submit(make_sample(rng)).get();
        ASSERT_TRUE(r.status == Status::kOk || r.status == Status::kRejectedOverload)
            << static_cast<int>(r.status) << " " << r.error;
        if (r.status == Status::kOk) ++ok_counts[static_cast<std::size_t>(c)];
      }
    });
  }
  for (auto& t : clients) t.join();
  server.drain();
  int total_ok = 0;
  for (const int n : ok_counts) total_ok += n;
  EXPECT_GT(total_ok, 0);
  EXPECT_EQ(server.latency_summary().count, total_ok);
}

TEST(ServeWire, RequestRoundTrip) {
  Rng rng(71);
  clado::serve::WireRequest req;
  req.type = clado::serve::MsgType::kInfer;
  req.deadline_us = 12345;
  req.input = Tensor::randn({3, 8, 8}, rng);

  const auto bytes = clado::serve::encode_request(req);
  const clado::serve::WireRequest back = clado::serve::decode_request(bytes);
  EXPECT_EQ(back.type, clado::serve::MsgType::kInfer);
  EXPECT_EQ(back.deadline_us, 12345);
  ASSERT_EQ(back.input.shape(), req.input.shape());
  for (std::int64_t i = 0; i < req.input.numel(); ++i) {
    EXPECT_EQ(back.input[i], req.input[i]);
  }
}

TEST(ServeWire, ResponseRoundTrip) {
  clado::serve::WireResponse resp;
  resp.status = Status::kOk;
  resp.predicted = 3;
  resp.queue_us = 17;
  resp.total_us = 170;
  resp.logits = {0.5F, -1.25F, 3.0F};
  resp.error = "none";

  const auto bytes = clado::serve::encode_response(resp);
  const clado::serve::WireResponse back = clado::serve::decode_response(bytes);
  EXPECT_EQ(back.status, Status::kOk);
  EXPECT_EQ(back.predicted, 3);
  EXPECT_EQ(back.queue_us, 17);
  EXPECT_EQ(back.total_us, 170);
  EXPECT_EQ(back.logits, resp.logits);
  EXPECT_EQ(back.error, "none");
}

TEST(ServeWire, RejectsCorruptFrames) {
  Rng rng(81);
  clado::serve::WireRequest req;
  req.input = Tensor::randn({3, 8, 8}, rng);
  auto bytes = clado::serve::encode_request(req);

  auto bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(clado::serve::decode_request(bad_magic), std::runtime_error);

  auto truncated = bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(clado::serve::decode_request(truncated), std::runtime_error);

  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(clado::serve::decode_request(trailing), std::runtime_error);

  // A version-skewed peer must fail loudly, not misparse.
  auto wrong_version = bytes;
  wrong_version[4] = 99;
  EXPECT_THROW(clado::serve::decode_request(wrong_version), std::runtime_error);
}

TEST(ServeWire, V2RequestCarriesModelClassAndSwapBits) {
  clado::serve::WireRequest swap;
  swap.type = clado::serve::MsgType::kSwap;
  swap.model = "resnet_a";
  swap.klass = clado::serve::DeadlineClass::kBestEffort;
  swap.swap_bits = {8, 4, 2, 0};
  const auto back = clado::serve::decode_request(clado::serve::encode_request(swap));
  EXPECT_EQ(back.type, clado::serve::MsgType::kSwap);
  EXPECT_EQ(back.model, "resnet_a");
  EXPECT_EQ(back.klass, clado::serve::DeadlineClass::kBestEffort);
  EXPECT_EQ(back.swap_bits, (std::vector<int>{8, 4, 2, 0}));

  Rng rng(77);
  clado::serve::WireRequest infer;
  infer.type = clado::serve::MsgType::kInfer;
  infer.model = "mobilenet_v3_mini";
  infer.klass = clado::serve::DeadlineClass::kBestEffort;
  infer.deadline_us = 999;
  infer.input = Tensor::randn({3, 8, 8}, rng);
  const auto back2 = clado::serve::decode_request(clado::serve::encode_request(infer));
  EXPECT_EQ(back2.model, "mobilenet_v3_mini");
  EXPECT_EQ(back2.klass, clado::serve::DeadlineClass::kBestEffort);
  EXPECT_EQ(back2.deadline_us, 999);
  ASSERT_EQ(back2.input.shape(), infer.input.shape());

  // Oversized model names are rejected at encode time, not silently cut.
  clado::serve::WireRequest huge;
  huge.type = clado::serve::MsgType::kPing;
  huge.model.assign(clado::serve::kWireMaxModelNameBytes + 1, 'x');
  EXPECT_THROW(clado::serve::encode_request(huge), std::runtime_error);
}

TEST(ServeWire, ResponseCarriesStats) {
  clado::serve::WireResponse resp;
  resp.status = Status::kOk;
  resp.stats = "resnet_a: replicas=2 queue=[0,1]";
  const auto back = clado::serve::decode_response(clado::serve::encode_response(resp));
  EXPECT_EQ(back.stats, resp.stats);
}

TEST(ServeWire, StatusNamesExhaustiveAndDecodable) {
  // Driven by kNumStatuses so adding a Status without a name (or without
  // decoder acceptance) fails here instead of printing "UNKNOWN" in prod.
  std::set<std::string> seen;
  for (std::uint32_t s = 0; s < clado::serve::kNumStatuses; ++s) {
    const auto status = static_cast<Status>(s);
    const char* name = clado::serve::status_name(status);
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "");
    EXPECT_STRNE(name, "UNKNOWN") << "status " << s << " has no real name";
    seen.insert(name);

    clado::serve::WireResponse resp;
    resp.status = status;
    EXPECT_EQ(clado::serve::decode_response(clado::serve::encode_response(resp)).status,
              status);
  }
  EXPECT_EQ(seen.size(), clado::serve::kNumStatuses) << "status names must be unique";

  // One past the end is a protocol error, not a silent cast.
  clado::serve::WireResponse resp;
  resp.status = Status::kOk;
  auto bytes = clado::serve::encode_response(resp);
  bytes[8] = static_cast<std::uint8_t>(clado::serve::kNumStatuses);  // status word
  EXPECT_THROW(clado::serve::decode_response(bytes), std::runtime_error);
}

TEST(ServeWire, FuzzedFramesAlwaysThrowOrDecodeCleanly) {
  // Seeded corpus fuzz: every truncation of a valid frame must throw, and
  // bit-flipped frames must either throw or decode — never crash or read
  // past the payload (the ASan/UBSan CI job is the teeth behind this).
  Rng rng(0xF00D);
  clado::serve::WireRequest infer;
  infer.type = clado::serve::MsgType::kInfer;
  infer.model = "m";
  infer.input = Tensor::randn({3, 8, 8}, rng);
  clado::serve::WireRequest swap;
  swap.type = clado::serve::MsgType::kSwap;
  swap.model = "m";
  swap.swap_bits = {8, 8, 4, 4};
  clado::serve::WireRequest ping;
  ping.type = clado::serve::MsgType::kPing;
  clado::serve::WireResponse resp;
  resp.status = Status::kOk;
  resp.logits = {1.0F, 2.0F, 3.0F};
  resp.error = "e";
  resp.stats = "s";

  const auto fuzz = [&rng](const std::vector<std::uint8_t>& frame, auto decode) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      auto truncated = frame;
      truncated.resize(len);
      EXPECT_THROW(decode(truncated), std::runtime_error) << "truncated to " << len;
    }
    for (int iter = 0; iter < 300; ++iter) {
      auto mutated = frame;
      const int flips = 1 + static_cast<int>(rng.uniform_int(4));
      for (int f = 0; f < flips; ++f) {
        const auto byte = rng.uniform_int(mutated.size());
        mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
      }
      try {
        decode(mutated);  // decoding garbage is fine; UB is not
      } catch (const std::exception&) {
      }
    }
  };
  const auto decode_req = [](const std::vector<std::uint8_t>& b) {
    return clado::serve::decode_request(b);
  };
  const auto decode_resp = [](const std::vector<std::uint8_t>& b) {
    return clado::serve::decode_response(b);
  };
  fuzz(clado::serve::encode_request(infer), decode_req);
  fuzz(clado::serve::encode_request(swap), decode_req);
  fuzz(clado::serve::encode_request(ping), decode_req);
  fuzz(clado::serve::encode_response(resp), decode_resp);
}

TEST(ServeWire, VersionSkewNamesBothVersions) {
  clado::serve::WireRequest req;
  req.type = clado::serve::MsgType::kPing;
  auto bytes = clado::serve::encode_request(req);
  bytes[4] = 1;  // a v1 peer's version word
  try {
    clado::serve::decode_request(bytes);
    FAIL() << "version-1 frame decoded as version " << clado::serve::kWireVersion;
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("wire version 1"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(clado::serve::kWireVersion)), std::string::npos)
        << what;
  }
}

TEST(ServeSocket, EndToEndQueryMatchesInProcess) {
  auto served = make_engine({8, 8, 8, 8}, 1);
  auto reference = make_engine({8, 8, 8, 8}, 1);
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.max_delay_us = 200;
  Server server(served, cfg);

  const std::string path =
      (std::filesystem::temp_directory_path() / "clado_serve_test.sock").string();
  clado::serve::SocketDaemon daemon(server, path);
  std::thread daemon_thread([&] { daemon.run(); });

  ASSERT_TRUE(clado::serve::ping_socket(path));
  Rng rng(91);
  for (int i = 0; i < 3; ++i) {
    const Tensor sample = make_sample(rng);
    const auto resp = clado::serve::query_socket(path, sample);
    ASSERT_EQ(resp.status, Status::kOk) << resp.error;
    Tensor one = sample;
    one.reshape_inplace({1, 3, 8, 8});
    const Tensor expected = reference->infer(one);
    EXPECT_EQ(resp.predicted, expected.argmax());
    ASSERT_EQ(static_cast<std::int64_t>(resp.logits.size()), expected.numel());
    for (std::int64_t k = 0; k < expected.numel(); ++k) {
      EXPECT_EQ(resp.logits[static_cast<std::size_t>(k)], expected[k]);
    }
  }

  EXPECT_TRUE(clado::serve::shutdown_socket(path));
  daemon_thread.join();
  EXPECT_FALSE(clado::serve::ping_socket(path));
  EXPECT_EQ(server.submit(Tensor({3, 8, 8})).get().status, Status::kShutdown);
}

TEST(ServeConfig, FromEnvParsesStrictly) {
  ASSERT_EQ(::setenv("CLADO_SERVE_MAX_BATCH", "16", 1), 0);
  ASSERT_EQ(::setenv("CLADO_SERVE_WORKERS", "3", 1), 0);
  ServerConfig cfg = ServerConfig::from_env();
  EXPECT_EQ(cfg.max_batch, 16);
  EXPECT_EQ(cfg.workers, 3);
  ASSERT_EQ(::setenv("CLADO_SERVE_MAX_BATCH", "lots", 1), 0);
  EXPECT_THROW(ServerConfig::from_env(), std::invalid_argument);
  ::unsetenv("CLADO_SERVE_MAX_BATCH");
  ::unsetenv("CLADO_SERVE_WORKERS");
}

TEST(ServeServer, RequiresReplicaPerWorker) {
  auto engine = make_engine({}, 1);
  ServerConfig cfg;
  cfg.workers = 2;
  EXPECT_THROW(Server(engine, cfg), std::invalid_argument);
}

TEST(ServeEngine, FusedAndEagerEnginesAgree) {
  Rng rng(7);
  auto fused_model = clado::testing::make_tiny_model(rng);
  Rng rng2(7);
  auto eager_model = clado::testing::make_tiny_model(rng2);
  EngineSpec on;
  on.bits = {8, 8, 8, 8};
  on.fusion = clado::serve::Fusion::kOn;
  EngineSpec off = on;
  off.fusion = clado::serve::Fusion::kOff;
  Engine fused(std::move(fused_model), std::move(on));
  Engine eager(std::move(eager_model), std::move(off));

  Rng data_rng(15);
  const Tensor batch = Tensor::randn({4, 3, 8, 8}, data_rng);
  const Tensor a = fused.infer(batch);
  const Tensor b = eager.infer(batch);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ServeEngine, SteadyStatePinnedPathIsAllocationFree) {
  if (!clado::tensor::alloc_counting_enabled()) {
    GTEST_SKIP() << "tensor allocation counting is compiled out of this build; "
                    "the sanitizer CI job enforces the zero-alloc contract";
  }
  auto engine = make_engine({8, 8, 8, 8}, 1);
  ASSERT_TRUE(engine->fused());
  const std::int64_t n = 4;
  Rng rng(19);
  const Tensor batch = Tensor::randn({n, 3, 8, 8}, rng);
  std::memcpy(engine->batch_buffer(0), batch.data(),
              sizeof(float) * static_cast<std::size_t>(batch.numel()));
  Tensor out;
  for (int i = 0; i < 3; ++i) engine->infer_pinned(n, out, 0);  // warmup
  const std::int64_t before = clado::tensor::alloc_count();
  for (int i = 0; i < 100; ++i) engine->infer_pinned(n, out, 0);
  EXPECT_EQ(clado::tensor::alloc_count(), before)
      << "steady-state serving batches must not touch the heap";
}

TEST(ServeEngine, PredictRunsOnRequestedReplica) {
  auto engine = make_engine({8, 8, 8, 8}, 2);
  Rng rng(23);
  const Tensor sample = make_sample(rng);
  const std::int64_t a = engine->predict(sample, 0);
  const std::int64_t b = engine->predict(sample, 1);
  EXPECT_EQ(a, b) << "replicas are frozen from the same weights";
  EXPECT_THROW(engine->predict(sample, 7), std::invalid_argument);
}

}  // namespace
