#include "clado/tensor/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "clado/fault/fault.h"
#include "clado/obs/obs.h"
#include "clado/tensor/ops.h"
#include "clado/tensor/tensor.h"

namespace clado::tensor {
namespace {

// The host running CI may be single-core; force a multi-threaded global
// pool so the parallel paths are exercised regardless. Runs before main()
// and therefore before the first ThreadPool::global() call in this binary.
const bool kForceThreads = [] {
  ::setenv("CLADO_NUM_THREADS", "4", 1);
  return true;
}();

TEST(ThreadPool, ResolveThreads) {
  ASSERT_TRUE(kForceThreads);
  // Explicit request wins over everything.
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3);
  // CLADO_NUM_THREADS=4 set above.
  EXPECT_EQ(ThreadPool::resolve_threads(0), 4);
  // Invalid values are a hard error now (they used to silently fall back
  // to hardware_concurrency, hiding typos like CLADO_NUM_THREADS=eight).
  ::setenv("CLADO_NUM_THREADS", "garbage", 1);
  EXPECT_THROW(ThreadPool::resolve_threads(0), std::invalid_argument);
  ::setenv("CLADO_NUM_THREADS", "0", 1);
  EXPECT_THROW(ThreadPool::resolve_threads(0), std::invalid_argument);
  ::setenv("CLADO_NUM_THREADS", "4x", 1);
  EXPECT_THROW(ThreadPool::resolve_threads(0), std::invalid_argument);
  // An explicit thread count never consults the environment.
  EXPECT_EQ(ThreadPool::resolve_threads(2), 2);
  // Unset means "use the hardware default".
  ::unsetenv("CLADO_NUM_THREADS");
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
  ::setenv("CLADO_NUM_THREADS", "4", 1);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 4);
}

TEST(ThreadPool, GlobalPoolHonorsEnvironment) {
  EXPECT_EQ(ThreadPool::global().num_threads(), 4);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, 7, [&](std::int64_t b, std::int64_t e) {
    ASSERT_LE(b, e);
    ASSERT_LE(e - b, 7);
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, EmptyAndSingleChunkRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, 10, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(0, 3, 10, [&](std::int64_t b, std::int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 3);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PropagatesLowestChunkException) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(0, 100, 10, [](std::int64_t b, std::int64_t) {
      throw std::runtime_error(std::to_string(b));
    });
    FAIL() << "parallel_for did not rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
  // The pool is still usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for(0, 50, 5, [&](std::int64_t b, std::int64_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 50);
}

// Regression: the old retry-in-place re-ran a chunk whose BODY threw. For
// accumulating bodies (the GEMM kernels do `c[j] += ...`) the first attempt's
// partial writes survive, so the retry silently double-applied them. A body
// throw must propagate without the body ever running again.
TEST(ThreadPool, ThrowingBodyIsNotRetriedAfterPartialWrites) {
  ThreadPool pool(4);
  clado::fault::disarm_all();
  const std::int64_t retries_before = clado::obs::counter("pool.chunk_retries").value();

  constexpr std::int64_t kN = 64;
  std::vector<std::atomic<int>> hits(kN);
  try {
    pool.parallel_for(0, kN, 8, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) {
        // The chunk starting at 8 dies mid-body AFTER writing half its range
        // — exactly the partial-accumulation state a retry must not re-run.
        if (i == b + 4 && b == 8) throw std::runtime_error("mid-body failure");
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
    FAIL() << "parallel_for did not rethrow the body exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "mid-body failure");
  }

  // No index may be touched twice: the failing chunk's partial writes
  // (indices 8..11) stay at one hit, the rest of its range at zero, and
  // every other chunk completes exactly once.
  for (std::int64_t i = 0; i < kN; ++i) {
    const int h = hits[static_cast<std::size_t>(i)].load();
    ASSERT_LE(h, 1) << "index " << i << " ran more than once — body was retried";
    if (i < 8 || i >= 16) {
      EXPECT_EQ(h, 1) << "index " << i;
    } else if (i < 12) {
      EXPECT_EQ(h, 1) << "index " << i << " (written before the throw)";
    } else {
      EXPECT_EQ(h, 0) << "index " << i << " (after the throw point)";
    }
  }
  // Body failures must not register as absorbed chunk retries.
  EXPECT_EQ(clado::obs::counter("pool.chunk_retries").value(), retries_before);
}

TEST(ThreadPool, ChunkRetryAbsorbsOneInjectedFault) {
  ThreadPool pool(4);
  clado::fault::disarm_all();
  const std::int64_t retries_before = clado::obs::counter("pool.chunk_retries").value();

  clado::fault::arm_one_shot(clado::fault::Site::kPoolTask, 1);
  constexpr std::int64_t kN = 64;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, 4, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  EXPECT_EQ(clado::fault::injected_count(clado::fault::Site::kPoolTask), 1U);
  clado::fault::disarm_all();

  // The injection fires before the chunk body runs and the retry re-runs
  // the body, so the caller sees a clean pass with every index done once.
  for (std::int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
  EXPECT_EQ(clado::obs::counter("pool.chunk_retries").value() - retries_before, 1);
}

TEST(ThreadPool, PersistentFaultStillPropagates) {
  ThreadPool pool(4);
  clado::fault::arm_from(clado::fault::Site::kPoolTask, 1);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(0, 16, 4,
                                 [&](std::int64_t, std::int64_t) { ran.fetch_add(1); }),
               clado::fault::FaultInjected);
  clado::fault::disarm_all();

  // The pool survives the failed batch and runs the next one normally.
  std::atomic<int> count{0};
  pool.parallel_for(0, 16, 4, [&](std::int64_t b, std::int64_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(0, 8, 1, [&](std::int64_t, std::int64_t) {
    // Nested submission to the same pool must not deadlock; it runs inline.
    pool.parallel_for(0, 100, 10, [&](std::int64_t b, std::int64_t e) {
      count.fetch_add(static_cast<int>(e - b));
    });
  });
  EXPECT_EQ(count.load(), 800);
}

TEST(ThreadPool, SingleThreadPoolRunsSerially) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<std::int64_t> order;
  pool.parallel_for(0, 40, 10, [&](std::int64_t b, std::int64_t) { order.push_back(b); });
  ASSERT_EQ(order.size(), 4U);
  for (std::size_t c = 0; c < order.size(); ++c) {
    EXPECT_EQ(order[c], static_cast<std::int64_t>(c) * 10);
  }
}

TEST(ThreadPool, GemmParallelMatchesSerialBitExactly) {
  ASSERT_GE(ThreadPool::global().num_threads(), 2);
  Rng rng(41);
  // Large enough to clear the parallel threshold (~4.9M mul-adds) with
  // several kBlockM row blocks.
  const std::int64_t m = 256, n = 96, k = 200;
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);
  Tensor c_par({m, n}, 0.5F);
  Tensor c_ser({m, n}, 0.5F);
  gemm(false, false, m, n, k, 1.25F, a.data(), b.data(), 0.75F, c_par.data());
  gemm_serial(false, false, m, n, k, 1.25F, a.data(), b.data(), 0.75F, c_ser.data());
  for (std::int64_t i = 0; i < c_par.numel(); ++i) {
    ASSERT_EQ(c_par[i], c_ser[i]) << "element " << i;
  }
}

TEST(ThreadPool, GemmTransposedVariantsMatchSerial) {
  Rng rng(42);
  const std::int64_t m = 192, n = 80, k = 160;
  const Tensor at = Tensor::randn({k, m}, rng);  // A^T layout
  const Tensor bt = Tensor::randn({n, k}, rng);  // B^T layout
  Tensor c_par({m, n});
  Tensor c_ser({m, n});
  gemm(true, true, m, n, k, 1.0F, at.data(), bt.data(), 0.0F, c_par.data());
  gemm_serial(true, true, m, n, k, 1.0F, at.data(), bt.data(), 0.0F, c_ser.data());
  for (std::int64_t i = 0; i < c_par.numel(); ++i) {
    ASSERT_EQ(c_par[i], c_ser[i]) << "element " << i;
  }
}

}  // namespace
}  // namespace clado::tensor
