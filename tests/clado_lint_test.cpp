// Feeds synthetic source snippets through clado_lint's rule engine via the
// binary's --stdin fixture mode and asserts each rule fires on a violating
// snippet and stays quiet on a conforming one, including suppressions.
//
// The binary path comes from CMake as CLADO_LINT_BIN; the repo root (for the
// end-to-end self-check) as CLADO_LINT_SOURCE_ROOT.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <sys/wait.h>

namespace {

struct LintResult {
  int exit_code = -1;
  std::string output;

  bool flags(const std::string& rule) const {
    return output.find(" " + rule + " ") != std::string::npos;
  }
};

// Runs `clado_lint --stdin <virtual_path>` with `source` on stdin.
LintResult run_lint(const std::string& virtual_path, const std::string& source) {
  const std::string snippet_path = std::string(::testing::TempDir()) + "clado_lint_snippet.cpp";
  {
    std::ofstream out(snippet_path, std::ios::trunc | std::ios::binary);
    out << source;
  }
  const std::string cmd = std::string(CLADO_LINT_BIN) + " --stdin '" + virtual_path + "' < '" +
                          snippet_path + "' 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  LintResult result;
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf{};
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.output.append(buf.data(), got);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(CladoLintTest, CleanSnippetPasses) {
  const LintResult r = run_lint("src/tensor/example.cpp",
                                "#include \"clado/tensor/tensor.h\"\n"
                                "namespace clado::tensor {\n"
                                "int add(int a, int b) { return a + b; }\n"
                                "}  // namespace clado::tensor\n");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST(CladoLintTest, PragmaOnceFiresOnHeaderWithoutIt) {
  const LintResult r = run_lint("src/tensor/include/clado/tensor/example.h",
                                "namespace clado::tensor {}\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("pragma-once")) << r.output;
}

TEST(CladoLintTest, PragmaOncePassesWhenPresent) {
  const LintResult r = run_lint("src/tensor/include/clado/tensor/example.h",
                                "#pragma once\nnamespace clado::tensor {}\n");
  EXPECT_FALSE(r.flags("pragma-once")) << r.output;
}

TEST(CladoLintTest, DirNamespaceFiresOnForeignNamespace) {
  const LintResult r =
      run_lint("src/tensor/example.cpp", "namespace clado::quant {\nint x;\n}\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("dir-namespace")) << r.output;
}

TEST(CladoLintTest, DirNamespaceAllowsOwnAnonymousAndUsing) {
  const LintResult r = run_lint("src/quant/example.cpp",
                                "namespace clado::quant {\n"
                                "namespace {\nint helper;\n}\n"
                                "using namespace clado::tensor;\n"
                                "}\n");
  EXPECT_FALSE(r.flags("dir-namespace")) << r.output;
}

TEST(CladoLintTest, NoRandFiresOnRandAndSrand) {
  const LintResult r = run_lint("src/data/example.cpp",
                                "#include <cstdlib>\n"
                                "int f() { srand(42); return rand(); }\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("no-rand")) << r.output;
}

TEST(CladoLintTest, NoRandIgnoresSubstringsCommentsAndStrings) {
  const LintResult r = run_lint("src/data/example.cpp",
                                "int strand(int x);\n"
                                "int operand(int x);\n"
                                "// rand() in a comment\n"
                                "const char* s = \"rand()\";\n"
                                "int g() { return strand(1) + operand(2); }\n");
  EXPECT_FALSE(r.flags("no-rand")) << r.output;
}

TEST(CladoLintTest, NoRandomDeviceFiresOutsideTests) {
  const LintResult r = run_lint("src/data/example.cpp",
                                "#include <random>\nstd::random_device rd;\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("no-random-device")) << r.output;
}

TEST(CladoLintTest, NoRandomDeviceAllowedInTests) {
  const LintResult r = run_lint("tests/example_test.cpp",
                                "#include <random>\nstd::random_device rd;\n");
  EXPECT_FALSE(r.flags("no-random-device")) << r.output;
}

TEST(CladoLintTest, NoStdioFiresInLibraryCode) {
  const LintResult r = run_lint("src/core/example.cpp",
                                "#include <cstdio>\n#include <iostream>\n"
                                "void f() { printf(\"x\"); std::cout << 1; }\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("no-stdio")) << r.output;
}

TEST(CladoLintTest, NoStdioAllowsSnprintfAndNonSrcDirs) {
  const LintResult in_src = run_lint("src/core/example.cpp",
                                     "#include <cstdio>\n"
                                     "void f(char* b) { snprintf(b, 4, \"x\"); }\n");
  EXPECT_FALSE(in_src.flags("no-stdio")) << in_src.output;
  const LintResult in_bench = run_lint("bench/example.cpp",
                                       "#include <cstdio>\nvoid f() { printf(\"x\"); }\n");
  EXPECT_FALSE(in_bench.flags("no-stdio")) << in_bench.output;
}

TEST(CladoLintTest, NoNakedNewFiresOnNewAndDelete) {
  const LintResult r = run_lint("src/nn/example.cpp",
                                "struct T {};\n"
                                "T* make() { return new T(); }\n"
                                "void drop(T* t) { delete t; }\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("no-naked-new")) << r.output;
}

TEST(CladoLintTest, NoNakedNewAllowsDeletedMembersAndIdentifiers) {
  const LintResult r = run_lint("src/nn/example.cpp",
                                "struct T {\n"
                                "  T(const T&) = delete;\n"
                                "  T& operator=(const T&) =delete;\n"
                                "};\n"
                                "int new_shape = 3;\n");
  EXPECT_FALSE(r.flags("no-naked-new")) << r.output;
}

TEST(CladoLintTest, NoThreadLocalFiresInSrc) {
  const LintResult r = run_lint("src/tensor/example.cpp",
                                "static thread_local int scratch = 0;\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("no-thread-local")) << r.output;
}

TEST(CladoLintTest, MissingOverrideFiresOnRedeclaredVirtual) {
  const LintResult r = run_lint("src/nn/example.h",
                                "#pragma once\n"
                                "namespace clado::nn {\n"
                                "class Base {\n"
                                " public:\n"
                                "  virtual ~Base() = default;\n"
                                "  virtual int forward(int x);\n"
                                "};\n"
                                "class Derived : public Base {\n"
                                " public:\n"
                                "  int forward(int x);\n"
                                "};\n"
                                "}\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("missing-override")) << r.output;
}

TEST(CladoLintTest, MissingOverridePassesWithOverrideAndOnCalls) {
  const LintResult r = run_lint("src/nn/example.h",
                                "#pragma once\n"
                                "namespace clado::nn {\n"
                                "class Base {\n"
                                " public:\n"
                                "  virtual ~Base() = default;\n"
                                "  virtual int forward(int x);\n"
                                "};\n"
                                "class Derived : public Base {\n"
                                " public:\n"
                                "  int forward(int x) override;\n"
                                "  int twice(int x) { return forward(x) + forward(x); }\n"
                                "};\n"
                                "}\n");
  EXPECT_FALSE(r.flags("missing-override")) << r.output;
}

TEST(CladoLintTest, MissingIncludeFiresOnForeignSubsystemUse) {
  const LintResult r = run_lint("src/nn/example.cpp",
                                "namespace clado::nn {\n"
                                "int f() { return clado::tensor::some_fn(); }\n"
                                "}\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("missing-include")) << r.output;
}

TEST(CladoLintTest, MissingIncludePassesWithDirectInclude) {
  const LintResult r = run_lint("src/nn/example.cpp",
                                "#include \"clado/tensor/ops.h\"\n"
                                "namespace clado::nn {\n"
                                "int f() { return clado::tensor::some_fn(); }\n"
                                "}\n");
  EXPECT_FALSE(r.flags("missing-include")) << r.output;
}

TEST(CladoLintTest, SuppressionWithJustificationHolds) {
  const LintResult same_line = run_lint(
      "src/core/example.cpp",
      "void f() { printf(\"x\"); }  // clado-lint: allow(no-stdio) -- demo sink\n");
  EXPECT_EQ(same_line.exit_code, 0) << same_line.output;
  const LintResult prev_line = run_lint("src/core/example.cpp",
                                        "// clado-lint: allow(no-stdio) -- demo sink\n"
                                        "void f() { printf(\"x\"); }\n");
  EXPECT_EQ(prev_line.exit_code, 0) << prev_line.output;
}

TEST(CladoLintTest, SuppressionOnlyCoversItsRule) {
  const LintResult r = run_lint(
      "src/core/example.cpp",
      "// clado-lint: allow(no-rand) -- wrong rule for this violation\n"
      "void f() { printf(\"x\"); }\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("no-stdio")) << r.output;
}

TEST(CladoLintTest, SuppressionWithoutJustificationIsRejected) {
  const LintResult r = run_lint(
      "src/core/example.cpp",
      "void f() { printf(\"x\"); }  // clado-lint: allow(no-stdio)\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("bad-suppression")) << r.output;
}

TEST(CladoLintTest, SuppressionOfUnknownRuleIsRejected) {
  const LintResult r = run_lint(
      "src/core/example.cpp",
      "int x;  // clado-lint: allow(no-such-rule) -- justification present\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("bad-suppression")) << r.output;
}

TEST(CladoLintTest, DiagnosticFormatIsFileLineRule) {
  const LintResult r = run_lint("src/tensor/example.cpp",
                                "int a;\nint b;\nvoid f() { printf(\"x\"); }\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("src/tensor/example.cpp:3: no-stdio"), std::string::npos) << r.output;
}

// End-to-end: the repo itself must lint clean (same invocation as the
// clado_lint_self_check ctest entry).
TEST(CladoLintTest, RepoSelfCheckIsClean) {
  const std::string cmd =
      std::string(CLADO_LINT_BIN) + " --root '" + CLADO_LINT_SOURCE_ROOT + "' 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  std::array<char, 4096> buf{};
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) output.append(buf.data(), got);
  const int status = pclose(pipe);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << output;
}

}  // namespace
