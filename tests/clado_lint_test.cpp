// Feeds synthetic source snippets through clado_lint's rule engine via the
// binary's --stdin fixture mode and asserts each rule fires on a violating
// snippet and stays quiet on a conforming one, including suppressions.
//
// The binary path comes from CMake as CLADO_LINT_BIN; the repo root (for the
// end-to-end self-check) as CLADO_LINT_SOURCE_ROOT.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include <sys/wait.h>

namespace {

struct LintResult {
  int exit_code = -1;
  std::string output;

  bool flags(const std::string& rule) const {
    return output.find(" " + rule + " ") != std::string::npos;
  }
};

// Runs `clado_lint --stdin <virtual_path> [extra_args]` with `source` on
// stdin (extra_args: e.g. "--format=json").
LintResult run_lint(const std::string& virtual_path, const std::string& source,
                    const std::string& extra_args = "") {
  const std::string snippet_path = std::string(::testing::TempDir()) + "clado_lint_snippet.cpp";
  {
    std::ofstream out(snippet_path, std::ios::trunc | std::ios::binary);
    out << source;
  }
  const std::string cmd = std::string(CLADO_LINT_BIN) + " --stdin '" + virtual_path + "' " +
                          extra_args + " < '" + snippet_path + "' 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  LintResult result;
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf{};
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.output.append(buf.data(), got);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(CladoLintTest, CleanSnippetPasses) {
  const LintResult r = run_lint("src/tensor/example.cpp",
                                "#include \"clado/tensor/tensor.h\"\n"
                                "namespace clado::tensor {\n"
                                "int add(int a, int b) { return a + b; }\n"
                                "}  // namespace clado::tensor\n");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST(CladoLintTest, PragmaOnceFiresOnHeaderWithoutIt) {
  const LintResult r = run_lint("src/tensor/include/clado/tensor/example.h",
                                "namespace clado::tensor {}\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("pragma-once")) << r.output;
}

TEST(CladoLintTest, PragmaOncePassesWhenPresent) {
  const LintResult r = run_lint("src/tensor/include/clado/tensor/example.h",
                                "#pragma once\nnamespace clado::tensor {}\n");
  EXPECT_FALSE(r.flags("pragma-once")) << r.output;
}

TEST(CladoLintTest, DirNamespaceFiresOnForeignNamespace) {
  const LintResult r =
      run_lint("src/tensor/example.cpp", "namespace clado::quant {\nint x;\n}\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("dir-namespace")) << r.output;
}

TEST(CladoLintTest, DirNamespaceAllowsOwnAnonymousAndUsing) {
  const LintResult r = run_lint("src/quant/example.cpp",
                                "namespace clado::quant {\n"
                                "namespace {\nint helper;\n}\n"
                                "using namespace clado::tensor;\n"
                                "}\n");
  EXPECT_FALSE(r.flags("dir-namespace")) << r.output;
}

TEST(CladoLintTest, NoRandFiresOnRandAndSrand) {
  const LintResult r = run_lint("src/data/example.cpp",
                                "#include <cstdlib>\n"
                                "int f() { srand(42); return rand(); }\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("no-rand")) << r.output;
}

TEST(CladoLintTest, NoRandIgnoresSubstringsCommentsAndStrings) {
  const LintResult r = run_lint("src/data/example.cpp",
                                "int strand(int x);\n"
                                "int operand(int x);\n"
                                "// rand() in a comment\n"
                                "const char* s = \"rand()\";\n"
                                "int g() { return strand(1) + operand(2); }\n");
  EXPECT_FALSE(r.flags("no-rand")) << r.output;
}

TEST(CladoLintTest, NoRandomDeviceFiresOutsideTests) {
  const LintResult r = run_lint("src/data/example.cpp",
                                "#include <random>\nstd::random_device rd;\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("no-random-device")) << r.output;
}

TEST(CladoLintTest, NoRandomDeviceAllowedInTests) {
  const LintResult r = run_lint("tests/example_test.cpp",
                                "#include <random>\nstd::random_device rd;\n");
  EXPECT_FALSE(r.flags("no-random-device")) << r.output;
}

TEST(CladoLintTest, NoStdioFiresInLibraryCode) {
  const LintResult r = run_lint("src/core/example.cpp",
                                "#include <cstdio>\n#include <iostream>\n"
                                "void f() { printf(\"x\"); std::cout << 1; }\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("no-stdio")) << r.output;
}

TEST(CladoLintTest, NoStdioAllowsSnprintfAndNonSrcDirs) {
  const LintResult in_src = run_lint("src/core/example.cpp",
                                     "#include <cstdio>\n"
                                     "void f(char* b) { snprintf(b, 4, \"x\"); }\n");
  EXPECT_FALSE(in_src.flags("no-stdio")) << in_src.output;
  const LintResult in_bench = run_lint("bench/example.cpp",
                                       "#include <cstdio>\nvoid f() { printf(\"x\"); }\n");
  EXPECT_FALSE(in_bench.flags("no-stdio")) << in_bench.output;
}

TEST(CladoLintTest, NoNakedNewFiresOnNewAndDelete) {
  const LintResult r = run_lint("src/nn/example.cpp",
                                "struct T {};\n"
                                "T* make() { return new T(); }\n"
                                "void drop(T* t) { delete t; }\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("no-naked-new")) << r.output;
}

TEST(CladoLintTest, NoNakedNewAllowsDeletedMembersAndIdentifiers) {
  const LintResult r = run_lint("src/nn/example.cpp",
                                "struct T {\n"
                                "  T(const T&) = delete;\n"
                                "  T& operator=(const T&) =delete;\n"
                                "};\n"
                                "int new_shape = 3;\n");
  EXPECT_FALSE(r.flags("no-naked-new")) << r.output;
}

TEST(CladoLintTest, NoThreadLocalFiresInSrc) {
  const LintResult r = run_lint("src/tensor/example.cpp",
                                "static thread_local int scratch = 0;\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("no-thread-local")) << r.output;
}

TEST(CladoLintTest, MissingOverrideFiresOnRedeclaredVirtual) {
  const LintResult r = run_lint("src/nn/example.h",
                                "#pragma once\n"
                                "namespace clado::nn {\n"
                                "class Base {\n"
                                " public:\n"
                                "  virtual ~Base() = default;\n"
                                "  virtual int forward(int x);\n"
                                "};\n"
                                "class Derived : public Base {\n"
                                " public:\n"
                                "  int forward(int x);\n"
                                "};\n"
                                "}\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("missing-override")) << r.output;
}

TEST(CladoLintTest, MissingOverridePassesWithOverrideAndOnCalls) {
  const LintResult r = run_lint("src/nn/example.h",
                                "#pragma once\n"
                                "namespace clado::nn {\n"
                                "class Base {\n"
                                " public:\n"
                                "  virtual ~Base() = default;\n"
                                "  virtual int forward(int x);\n"
                                "};\n"
                                "class Derived : public Base {\n"
                                " public:\n"
                                "  int forward(int x) override;\n"
                                "  int twice(int x) { return forward(x) + forward(x); }\n"
                                "};\n"
                                "}\n");
  EXPECT_FALSE(r.flags("missing-override")) << r.output;
}

TEST(CladoLintTest, MissingIncludeFiresOnForeignSubsystemUse) {
  const LintResult r = run_lint("src/nn/example.cpp",
                                "namespace clado::nn {\n"
                                "int f() { return clado::tensor::some_fn(); }\n"
                                "}\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("missing-include")) << r.output;
}

TEST(CladoLintTest, MissingIncludePassesWithDirectInclude) {
  const LintResult r = run_lint("src/nn/example.cpp",
                                "#include \"clado/tensor/ops.h\"\n"
                                "namespace clado::nn {\n"
                                "int f() { return clado::tensor::some_fn(); }\n"
                                "}\n");
  EXPECT_FALSE(r.flags("missing-include")) << r.output;
}

TEST(CladoLintTest, SuppressionWithJustificationHolds) {
  const LintResult same_line = run_lint(
      "src/core/example.cpp",
      "void f() { printf(\"x\"); }  // clado-lint: allow(no-stdio) -- demo sink\n");
  EXPECT_EQ(same_line.exit_code, 0) << same_line.output;
  const LintResult prev_line = run_lint("src/core/example.cpp",
                                        "// clado-lint: allow(no-stdio) -- demo sink\n"
                                        "void f() { printf(\"x\"); }\n");
  EXPECT_EQ(prev_line.exit_code, 0) << prev_line.output;
}

TEST(CladoLintTest, SuppressionOnlyCoversItsRule) {
  const LintResult r = run_lint(
      "src/core/example.cpp",
      "// clado-lint: allow(no-rand) -- wrong rule for this violation\n"
      "void f() { printf(\"x\"); }\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("no-stdio")) << r.output;
}

TEST(CladoLintTest, SuppressionWithoutJustificationIsRejected) {
  const LintResult r = run_lint(
      "src/core/example.cpp",
      "void f() { printf(\"x\"); }  // clado-lint: allow(no-stdio)\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("bad-suppression")) << r.output;
}

TEST(CladoLintTest, SuppressionOfUnknownRuleIsRejected) {
  const LintResult r = run_lint(
      "src/core/example.cpp",
      "int x;  // clado-lint: allow(no-such-rule) -- justification present\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("bad-suppression")) << r.output;
}

TEST(CladoLintTest, DiagnosticFormatIsFileLineRule) {
  const LintResult r = run_lint("src/tensor/example.cpp",
                                "int a;\nint b;\nvoid f() { printf(\"x\"); }\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("src/tensor/example.cpp:3: no-stdio"), std::string::npos) << r.output;
}

// ---- lock-discipline -------------------------------------------------------

// A ThreadPool-shaped fixture: annotated queue, one locked accessor, one
// unlocked accessor. Deleting the lock_guard (the unlocked `broken` method
// here IS that deletion) must produce a lock-discipline diagnostic — the
// acceptance spot-check for annotated classes.
const char* kLockFixtureHeader =
    "#pragma once\n"
    "#include <deque>\n"
    "#include <mutex>\n"
    "#define CLADO_GUARDED_BY(m)\n"
    "#define CLADO_REQUIRES(m)\n"
    "namespace clado::tensor {\n"
    "class Pool {\n"
    " public:\n"
    "  Pool() { queue_.clear(); }\n"  // ctor-exempt write
    "  void push(int t) {\n"
    "    std::lock_guard<std::mutex> lock(mutex_);\n"
    "    queue_.push_back(t);\n"
    "  }\n"
    "  void drain_locked() CLADO_REQUIRES(mutex_) { queue_.clear(); }\n"
    "%s"
    " private:\n"
    "  std::mutex mutex_;\n"
    "  std::deque<int> queue_ CLADO_GUARDED_BY(mutex_);\n"
    "};\n"
    "}  // namespace clado::tensor\n";

std::string lock_fixture(const std::string& extra_member) {
  std::string out = kLockFixtureHeader;
  out.replace(out.find("%s"), 2, extra_member);
  return out;
}

TEST(CladoLintTest, LockDisciplineFiresOnUnlockedAccess) {
  const LintResult r = run_lint(
      "src/tensor/include/clado/tensor/pool.h",
      lock_fixture("  bool broken() { return queue_.empty(); }\n"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("lock-discipline")) << r.output;
}

TEST(CladoLintTest, LockDisciplinePassesLockedRequiresAndCtor) {
  const LintResult r = run_lint("src/tensor/include/clado/tensor/pool.h", lock_fixture(""));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(CladoLintTest, LockDisciplineFiresAfterDeletingALockGuard) {
  // Same class, but push() lost its lock_guard: the previously-clean
  // fixture must now flag — deleting a lock from an annotated class is
  // exactly the regression the rule exists to catch.
  std::string source = lock_fixture("");
  const std::string guard = "    std::lock_guard<std::mutex> lock(mutex_);\n";
  const auto at = source.find(guard);
  ASSERT_NE(at, std::string::npos);
  source.erase(at, guard.size());
  const LintResult r = run_lint("src/tensor/include/clado/tensor/pool.h", source);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("lock-discipline")) << r.output;
}

TEST(CladoLintTest, LockDisciplineWrongMutexDoesNotCover) {
  const LintResult r = run_lint(
      "src/tensor/include/clado/tensor/pool.h",
      lock_fixture("  std::mutex other_;\n"
                   "  bool wrong() {\n"
                   "    std::lock_guard<std::mutex> lock(other_);\n"
                   "    return queue_.empty();\n"
                   "  }\n"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("lock-discipline")) << r.output;
}

TEST(CladoLintTest, LockDisciplineSuppressionHolds) {
  const LintResult r = run_lint(
      "src/tensor/include/clado/tensor/pool.h",
      lock_fixture("  // clado-lint: allow(lock-discipline) -- single-threaded test hook\n"
                   "  bool racy() { return queue_.empty(); }\n"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(CladoLintTest, LockDisciplineIgnoresOtherClassesSameFieldName) {
  // A different class with a member of the same NAME but no annotation must
  // not be flagged (the rule matches on the owning class, not bare names).
  const LintResult r = run_lint(
      "src/tensor/include/clado/tensor/pool.h",
      lock_fixture("") +
          "namespace clado::tensor {\n"
          "class Other {\n"
          " public:\n"
          "  bool fine() { return queue_.empty(); }\n"
          " private:\n"
          "  std::deque<int> queue_;\n"
          "};\n"
          "}  // namespace clado::tensor\n");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ---- env-discipline --------------------------------------------------------

TEST(CladoLintTest, EnvDisciplineFiresOnRawGetenvInSrc) {
  const LintResult r = run_lint("src/nn/example.cpp",
                                "#include <cstdlib>\n"
                                "namespace clado::nn {\n"
                                "bool traced() { return std::getenv(\"CLADO_TRACE\") != nullptr; }\n"
                                "}\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("env-discipline")) << r.output;
}

TEST(CladoLintTest, EnvDisciplinePassesOnStrictHelpers) {
  const LintResult r = run_lint(
      "src/nn/example.cpp",
      "#include \"clado/tensor/env.h\"\n"
      "namespace clado::nn {\n"
      "int threads() {\n"
      "  return static_cast<int>(\n"
      "      clado::tensor::env_int_strict(\"CLADO_NUM_THREADS\", 1, 64).value_or(1));\n"
      "}\n"
      "}\n");
  EXPECT_FALSE(r.flags("env-discipline")) << r.output;
}

TEST(CladoLintTest, EnvDisciplineAllowsGetenvOutsideSrcAndTools) {
  const LintResult r = run_lint("bench/example.cpp",
                                "#include <cstdlib>\n"
                                "bool traced() { return std::getenv(\"CLADO_TRACE\") != nullptr; }\n");
  EXPECT_FALSE(r.flags("env-discipline")) << r.output;
}

TEST(CladoLintTest, EnvDisciplineSuppressionHolds) {
  const LintResult r = run_lint(
      "src/nn/example.cpp",
      "#include <cstdlib>\n"
      "namespace clado::nn {\n"
      "// clado-lint: allow(env-discipline) -- layering test double\n"
      "bool traced() { return std::getenv(\"CLADO_TRACE\") != nullptr; }\n"
      "}\n");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ---- simd-hygiene ----------------------------------------------------------

TEST(CladoLintTest, SimdHygieneFiresOutsideKernelTus) {
  const LintResult r = run_lint("src/nn/example.cpp",
                                "#include <immintrin.h>\n"
                                "namespace clado::nn {\n"
                                "void zero(float* p) { _mm256_storeu_ps(p, _mm256_setzero_ps()); }\n"
                                "}\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("simd-hygiene")) << r.output;
}

TEST(CladoLintTest, SimdHygienePassesInAvx2KernelTu) {
  const LintResult r = run_lint(
      "src/tensor/kernels/example_avx2.cpp",
      "#include <immintrin.h>\n"
      "namespace clado::tensor {\n"
      "void zero(float* p) { _mm256_storeu_ps(p, _mm256_setzero_ps()); }\n"
      "}\n");
  EXPECT_FALSE(r.flags("simd-hygiene")) << r.output;
}

TEST(CladoLintTest, SimdHygieneFiresOnAvx512InAvx2KernelTu) {
  // The kernel TUs are compiled with exactly -mavx2 -mfma; AVX-512 tokens
  // there are either a compile break or an untested macro-guarded path.
  const LintResult r = run_lint(
      "src/tensor/kernels/example_avx2.cpp",
      "#include <immintrin.h>\n"
      "namespace clado::tensor {\n"
      "void zero(float* p) { _mm512_storeu_ps(p, _mm512_setzero_ps()); }\n"
      "}\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("simd-hygiene")) << r.output;
}

TEST(CladoLintTest, SimdHygieneFiresOnAvx512MaskTypeInAvx2KernelTu) {
  const LintResult r = run_lint(
      "src/tensor/kernels/example_avx2.cpp",
      "#include <immintrin.h>\n"
      "namespace clado::tensor {\n"
      "int lanes(__mmask16 m) { return static_cast<int>(m); }\n"
      "}\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("simd-hygiene")) << r.output;
}

TEST(CladoLintTest, SimdHygieneAllowsAvx2IntrinsicsInAvx2KernelTu) {
  const LintResult r = run_lint(
      "src/tensor/kernels/example_avx2.cpp",
      "#include <immintrin.h>\n"
      "namespace clado::tensor {\n"
      "int sum(__m256i v) { return _mm256_extract_epi32(_mm256_abs_epi32(v), 0); }\n"
      "}\n");
  EXPECT_FALSE(r.flags("simd-hygiene")) << r.output;
}

TEST(CladoLintTest, SimdHygieneIgnoresIntrinsicNamesInCommentsAndStrings) {
  const LintResult r = run_lint(
      "src/nn/example.cpp",
      "// _mm256_fmadd_ps is discussed here but never called\n"
      "namespace clado::nn {\n"
      "const char* kDoc = \"uses _mm256_fmadd_ps internally\";\n"
      "}\n");
  EXPECT_FALSE(r.flags("simd-hygiene")) << r.output;
}

TEST(CladoLintTest, SimdHygieneSuppressionHolds) {
  const LintResult r = run_lint(
      "src/nn/example.cpp",
      "namespace clado::nn {\n"
      "// clado-lint: allow(simd-hygiene) -- feature-detection constant only\n"
      "int probe() { return _MM_HINT_T0; }\n"
      "}\n");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ---- trailing suppression on multi-line statements -------------------------

TEST(CladoLintTest, TrailingSuppressionCoversMultiLineStatement) {
  // The violation is on the printf line; the allow sits three lines later on
  // the statement's closing line. Token-aware extension must connect them.
  const LintResult r = run_lint(
      "src/core/example.cpp",
      "#include <cstdio>\n"
      "void f() {\n"
      "  printf(\"%d %d %d\",\n"
      "         1,\n"
      "         2,\n"
      "         3);  // clado-lint: allow(no-stdio) -- progress output is intentional\n"
      "}\n");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(CladoLintTest, TrailingSuppressionDoesNotLeakPastStatementEnd) {
  // The allow trails the FIRST statement; the second violation on the next
  // statement must still flag.
  const LintResult r = run_lint(
      "src/core/example.cpp",
      "#include <cstdio>\n"
      "void f() {\n"
      "  printf(\"%d\",\n"
      "         1);  // clado-lint: allow(no-stdio) -- first call only\n"
      "  printf(\"second\");\n"
      "}\n");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_TRUE(r.flags("no-stdio")) << r.output;
}

// ---- --format --------------------------------------------------------------

TEST(CladoLintTest, FormatJsonEmitsStructuredDiagnostics) {
  const LintResult r = run_lint("src/core/example.cpp",
                                "void f() { printf(\"x\"); }\n", "--format=json");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("\"rule\":\"no-stdio\""), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"file\":\"src/core/example.cpp\""), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"line\":1"), std::string::npos) << r.output;
}

TEST(CladoLintTest, FormatJsonEmitsEmptyArrayWhenClean) {
  const LintResult r = run_lint("src/core/example.cpp", "int x;\n", "--format=json");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("[]"), std::string::npos) << r.output;
}

TEST(CladoLintTest, FormatGithubEmitsWorkflowAnnotations) {
  const LintResult r = run_lint("src/core/example.cpp",
                                "void f() { printf(\"x\"); }\n", "--format github");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("::error file=src/core/example.cpp,line=1,title=clado-lint no-stdio::"),
            std::string::npos)
      << r.output;
}

TEST(CladoLintTest, FormatRejectsUnknownValue) {
  const LintResult r = run_lint("src/core/example.cpp", "int x;\n", "--format=yaml");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

// ---- --list-rules golden + docs coverage -----------------------------------

std::string run_command(const std::string& cmd) {
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  std::string output;
  if (pipe == nullptr) return output;
  std::array<char, 4096> buf{};
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) output.append(buf.data(), got);
  pclose(pipe);
  return output;
}

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string out((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return out;
}

// Adding (or renaming) a rule without updating the golden file fails here;
// the golden file in turn anchors the docs-coverage test below, so a rule
// cannot land without documentation.
TEST(CladoLintTest, ListRulesMatchesGolden) {
  const std::string actual = run_command(std::string(CLADO_LINT_BIN) + " --list-rules 2>&1");
  const std::string golden =
      read_file_or_empty(std::string(CLADO_LINT_SOURCE_ROOT) + "/tests/clado_lint_rules.golden");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(actual, golden)
      << "clado_lint --list-rules drifted from tests/clado_lint_rules.golden; update the "
         "golden file AND the DESIGN.md rule table together";
  EXPECT_NE(actual.find("lock-discipline\n"), std::string::npos);
  EXPECT_NE(actual.find("env-discipline\n"), std::string::npos);
  EXPECT_NE(actual.find("simd-hygiene\n"), std::string::npos);
}

TEST(CladoLintTest, EveryRuleIdIsDocumentedInDesignDoc) {
  const std::string rules = run_command(std::string(CLADO_LINT_BIN) + " --list-rules 2>&1");
  const std::string design =
      read_file_or_empty(std::string(CLADO_LINT_SOURCE_ROOT) + "/DESIGN.md");
  ASSERT_FALSE(design.empty());
  std::size_t start = 0;
  while (start < rules.size()) {
    std::size_t end = rules.find('\n', start);
    if (end == std::string::npos) end = rules.size();
    const std::string rule = rules.substr(start, end - start);
    if (!rule.empty()) {
      EXPECT_NE(design.find("`" + rule + "`"), std::string::npos)
          << "rule id '" << rule << "' is missing from the DESIGN.md rule table";
    }
    start = end + 1;
  }
}

// End-to-end: the repo itself must lint clean (same invocation as the
// clado_lint_self_check ctest entry).
TEST(CladoLintTest, RepoSelfCheckIsClean) {
  const std::string cmd =
      std::string(CLADO_LINT_BIN) + " --root '" + CLADO_LINT_SOURCE_ROOT + "' 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  std::array<char, 4096> buf{};
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) output.append(buf.data(), got);
  const int status = pclose(pipe);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << output;
}

}  // namespace
